"""Online AGGREGATE: sketch folding, lazy/holistic paths, block publishing."""

from __future__ import annotations

import numpy as np

from repro.core.blocks import BlockOutput, GroupKey, GroupValue, RuntimeContext
from repro.core.classify import evaluate_side
from repro.core.operators.base import DeltaBatch, SpineOp, StateRule, TagRule
from repro.core.sentinels import QuiescenceTracker
from repro.core.sketch import AggBundle
from repro.rollup import ResolvedRollupStore
from repro.state.store import SelfSizingSet
from repro.core.values import LineageRef, UncertainValue
from repro.kernels.codec import factorize_keys, recode_subset
from repro.kernels.holistic import grouped_indices
from repro.errors import UnsupportedQueryError
from repro.relational.aggregates import AggSpec
from repro.relational.relation import Relation
from repro.relational.schema import Schema


class AggregateOp(SpineOp):
    """Online AGGREGATE (Section 4.2's state rules + Section 5's pruning).

    Certain input rows with deterministic aggregate arguments fold into
    per-group per-trial sketches and are forgotten. Rows whose argument is
    uncertain go to a row store and are lazily re-evaluated each batch
    through their lineage references; volatile input rows are re-aggregated
    from scratch each batch (they are few — that is the point). The
    combined result is published as this lineage block's output.
    """

    #: AGGREGATE ends a lineage block: input tags are absorbed into the
    #: published block output (fresh ``u#``/``uA`` tags downstream). The
    #: §4.2 state rule is sketch-only over certain-append input; the row
    #: store ("rows") is populated only when a lazy/holistic aggregate
    #: argument demands re-evaluation.
    tag_rule = TagRule(consumes_uncertain="allowed", resets_tags=True)
    state_rule = StateRule(
        frozenset(
            {
                "sketch",
                "sketch_ready",
                "rows",
                "certain_groups",
                "published_keys",
                "tombstones",
                "rollup",
                "quiesce",
                "output",
            }
        ),
        # The persistent block output doubles as the published lineage
        # block under ``rollup=True``; the race detector checks that the
        # backing block is produced by this unit alone (RACE301).
        block_backed=frozenset({"output"}),
    )

    def __init__(
        self,
        child: SpineOp,
        group_by: list[str],
        specs: list[AggSpec],
        schema: Schema,
        block_id: int,
        sample_weighted: bool,
    ):
        super().__init__(f"aggregate:{block_id}", schema, set(), (child,))
        self.child = child
        self.group_by = group_by
        self.specs = specs
        self.block_id = block_id
        self.sample_weighted = sample_weighted

        self.sketch_specs: list[AggSpec] = []
        self.lazy_specs: list[AggSpec] = []
        self.holistic_specs: list[AggSpec] = []
        for spec in specs:
            arg_uncertain = bool(spec.attrs() & child.uncertain_cols)
            if arg_uncertain and not spec.func.decomposable:
                raise UnsupportedQueryError(
                    f"aggregate {spec.name!r}: holistic UDAF over an "
                    "uncertain argument is not supported online"
                )
            if arg_uncertain:
                if spec.func.num_features != 1:
                    raise UnsupportedQueryError(
                        f"aggregate {spec.name!r} over an uncertain argument "
                        "requires a single identity feature (SUM/AVG-style)"
                    )
                self.lazy_specs.append(spec)
            elif spec.func.decomposable:
                self.sketch_specs.append(spec)
            else:
                self.holistic_specs.append(spec)
        self._init_state()

    def _init_state(self) -> None:
        self.state.put("sketch", AggBundle(self.sketch_specs, 0))
        self.state.put("sketch_ready", False)
        self.state.put("rows", None)
        self.state.put("certain_groups", SelfSizingSet())
        self.state.put("published_keys", SelfSizingSet())
        self.state.put("tombstones", {})
        self.state.put("rollup", ResolvedRollupStore())
        self.state.put("quiesce", QuiescenceTracker())
        self.state.put(
            "output",
            BlockOutput(self.block_id, self.group_by, [s.name for s in self.specs]),
        )

    @property
    def sketch(self) -> AggBundle:
        return self.state.get("sketch")

    @sketch.setter
    def sketch(self, value: AggBundle) -> None:
        self.state.put("sketch", value)

    @property
    def row_store(self) -> Relation | None:
        return self.state.get("rows")

    @row_store.setter
    def row_store(self, value: Relation | None) -> None:
        self.state.put("rows", value)

    @property
    def certain_groups(self) -> set[GroupKey]:
        return self.state.get("certain_groups")

    @property
    def _published_keys(self) -> set[GroupKey]:
        return self.state.get("published_keys")

    @property
    def _tombstones(self) -> dict[GroupKey, GroupValue]:
        return self.state.get("tombstones")

    @property
    def _rollup(self) -> ResolvedRollupStore:
        return self.state.get("rollup")

    @property
    def _quiesce(self) -> QuiescenceTracker:
        return self.state.get("quiesce")

    @property
    def _output(self) -> BlockOutput:
        return self.state.get("output")

    @property
    def needs_row_store(self) -> bool:
        return bool(self.lazy_specs or self.holistic_specs)

    @property
    def rollup_eligible(self) -> bool:
        """Whether this sink can run the two-tier plan.

        Lazy/holistic paths recompute from the row store each batch and
        sample-weighted scaling aggregates (COUNT/SUM-style,
        ``scales_with_m``) are re-finalized with a new ``ctx.scale``
        every batch, so neither has a per-group fixed point to migrate;
        non-scaling decomposable sketches (AVG-style) do.
        """
        return not self.needs_row_store and (
            not self.sample_weighted
            or all(not s.func.scales_with_m for s in self.sketch_specs)
        )

    def process(self, delta: DeltaBatch, ctx: RuntimeContext) -> DeltaBatch:
        if not self.state.get("sketch_ready"):
            self.sketch = AggBundle(self.sketch_specs, ctx.num_trials)
            self.state.put("sketch_ready", True)
            if not self.group_by:
                # A scalar aggregate always yields one row, even if no
                # input ever arrives (COUNT -> 0, AVG -> NaN) — matching
                # the batch evaluator.
                self.sketch._ensure_groups([()])
                self.certain_groups.add(())
        cin, vin = delta.certain, delta.volatile
        ctx.metrics.shipped_bytes += cin.estimated_bytes() + vin.estimated_bytes()

        rollup_on = ctx.config.rollup and self.rollup_eligible
        if rollup_on:
            self._demote_and_touch(ctx, cin, vin)

        self.sketch.fold(cin, self.group_by)
        if self.needs_row_store and len(cin):
            store = self.row_store
            self.row_store = cin if store is None else store.concat(cin)
        if len(cin):
            if ctx.config.vectorize:
                # The codec's distinct keys update the set identically to
                # the per-row tuples (set semantics), without building a
                # tuple per row.
                self.certain_groups.update(factorize_keys(cin, self.group_by).keys)
            else:
                self.certain_groups.update(
                    cin.key_tuples(self.group_by) if self.group_by else [()]
                )

        volatile_bundle = None
        if len(vin):
            ctx.metrics.recomputed_tuples += len(vin)
            volatile_bundle = AggBundle.from_relation(
                vin, self.group_by, self.sketch_specs, ctx.num_trials
            )
        combined = self.sketch.merged_with(volatile_bundle)

        scale = ctx.scale if self.sample_weighted else 1.0
        per_group: dict[GroupKey, dict[str, object]] = {}
        exist_trials: dict[GroupKey, np.ndarray] = {}
        exist_point: dict[GroupKey, bool] = {}
        g = len(combined)
        finals = [combined.finalize(s, scale) for s in range(len(self.sketch_specs))]
        trial_weight = combined.trial_weight[:g]
        weight = combined.weight[:g]
        for gi, key in enumerate(combined.keys):
            vals: dict[str, object] = {}
            for s, spec in enumerate(self.sketch_specs):
                vals[spec.name] = (finals[s][0][gi], finals[s][1][gi])
            per_group[key] = vals
            exist_trials[key] = trial_weight[gi] > 0
            exist_point[key] = bool(weight[gi] > 0)

        if self.lazy_specs or self.holistic_specs:
            self._add_lazy_and_holistic(
                ctx, vin, scale, per_group, exist_trials, exist_point
            )

        self._publish(ctx, per_group, exist_trials, exist_point)
        if rollup_on:
            self._migrate_quiescent(ctx)
        return DeltaBatch(self.empty(ctx), self.empty(ctx))

    # -- rollup tier (repro.rollup) ----------------------------------------------------

    def _batch_touched_keys(
        self, ctx: RuntimeContext, cin: Relation, vin: Relation
    ) -> list[GroupKey]:
        """Distinct group keys receiving any contribution this batch."""
        if not self.group_by:
            return [()] if (len(cin) or len(vin)) else []
        touched: dict[GroupKey, None] = {}
        for rel in (cin, vin):
            if not len(rel):
                continue
            if ctx.config.vectorize:
                touched.update(
                    dict.fromkeys(factorize_keys(rel, self.group_by).keys)
                )
            else:
                touched.update(dict.fromkeys(rel.key_tuples(self.group_by)))
        return list(touched)

    def _demote_and_touch(
        self, ctx: RuntimeContext, cin: Relation, vin: Relation
    ) -> None:
        """Fold touched (or, off the happy path, all) rollup groups back.

        Runs before the batch's fold so reinsertion assigns into fresh
        sketch rows the fold then accumulates onto. Touch-demotion is
        the tier's structural flip detector; the conservative branch
        (pruning valve tripped, or a recovery replay in flight) demotes
        everything — resolved decisions are exactly what is no longer
        trusted there.
        """
        rollup = self._rollup
        tracker = self._quiesce
        active = ctx.monitor.enabled and not ctx.monitor.replaying
        touched = self._batch_touched_keys(ctx, cin, vin)
        if len(rollup):
            demote = (
                [k for k in touched if k in rollup]
                if active
                else list(rollup.keys())
            )
            if demote:
                rows = rollup.demote(demote)
                self.sketch.reinsert_groups(rows)
                tracker.forget(rows)
                if ctx.obs.enabled:
                    ctx.obs.metrics.counter(
                        "rollup.demotions", op=self.label
                    ).inc(len(rows))
                self.state.put("rollup", rollup)
                self.state.put("sketch", self.sketch)
        if touched:
            tracker.touch(touched, ctx.batch_no)
            self.state.put("quiesce", tracker)

    def _migrate_quiescent(self, ctx: RuntimeContext) -> None:
        """Move quiescent resolved groups out of the hot path."""
        if not (ctx.monitor.enabled and not ctx.monitor.replaying):
            return
        sketch = self.sketch
        output = self._output
        candidates = [
            key
            for key in self._quiesce.candidates(
                list(sketch.key_to_gid), ctx.batch_no, ctx.config.rollup_quiesce
            )
            if key in output.groups
        ]
        if not candidates:
            return
        rollup = self._rollup
        rows = sketch.extract_groups(candidates)
        for key, accum in rows.items():
            rollup.migrate(key, output.groups[key], accum, ctx.batch_no)
        self._quiesce.forget(candidates)
        if ctx.obs.enabled:
            ctx.obs.metrics.counter("rollup.migrations", op=self.label).inc(
                len(rows)
            )
        self.state.put("rollup", rollup)
        self.state.put("sketch", sketch)

    # -- lazy / holistic paths ---------------------------------------------------------

    def _lazy_input(self, ctx: RuntimeContext, vin: Relation) -> Relation:
        store = self.row_store
        if store is None:
            return vin
        return store.concat(vin) if len(vin) else store

    def _add_lazy_and_holistic(
        self,
        ctx: RuntimeContext,
        vin: Relation,
        scale: float,
        per_group: dict[GroupKey, dict[str, object]],
        exist_trials: dict[GroupKey, np.ndarray],
        exist_point: dict[GroupKey, bool],
    ) -> None:
        rows = self._lazy_input(ctx, vin)
        ctx.metrics.recomputed_tuples += len(rows)
        vectorize = ctx.config.vectorize
        kc = factorize_keys(rows, self.group_by) if vectorize else None
        keys = (
            None
            if vectorize
            else rows.key_tuples(self.group_by) if self.group_by else [()] * len(rows)
        )
        # Deterministic-mult stores never materialize the (n, T) copy —
        # the broadcast is read-only and all uses below fancy-index it.
        trial_w = (
            rows.trial_mults
            if rows.trial_mults is not None
            else np.broadcast_to(rows.mult[:, None], (len(rows), ctx.num_trials))
        )
        for spec in self.lazy_specs:
            side = evaluate_side(spec.arg, rows, self.child.uncertain_cols, ctx)
            ok = ~side.pending
            bundle = AggBundle([spec], ctx.num_trials)
            if vectorize:
                sub_keys, sub_codes = recode_subset(kc, ok)
                bundle.fold_values_coded(
                    sub_keys,
                    sub_codes,
                    0,
                    side.point[ok],
                    side.trial_matrix(ctx.num_trials)[ok],
                    rows.mult[ok],
                    trial_w[ok],
                )
            else:
                bundle.fold_values(
                    [k for k, good in zip(keys, ok) if good],
                    0,
                    side.point[ok],
                    side.trial_matrix(ctx.num_trials)[ok],
                    rows.mult[ok],
                    trial_w[ok],
                )
            values, trial_values = bundle.finalize(0, scale)
            for gi, key in enumerate(bundle.keys):
                vals = per_group.setdefault(key, {})
                vals[spec.name] = (values[gi], trial_values[gi])
                exist_trials.setdefault(key, bundle.trial_weight[gi] > 0)
                exist_point.setdefault(key, bool(bundle.weight[gi] > 0))
        for spec in self.holistic_specs:
            values_arr = spec.arg_values(rows)
            if vectorize:
                group_iter = zip(kc.keys, grouped_indices(kc.codes, kc.num_keys))
            else:
                by_group: dict[GroupKey, list[int]] = {}
                for i, key in enumerate(keys):
                    by_group.setdefault(key, []).append(i)
                group_iter = (
                    (key, np.asarray(idx, dtype=np.intp))
                    for key, idx in by_group.items()
                )
            for key, ix in group_iter:
                point = spec.func.compute(values_arr[ix], rows.mult[ix]) * (
                    scale if spec.func.scales_with_m else 1.0
                )
                if vectorize:
                    trials = spec.func.trial_compute(values_arr[ix], trial_w[ix])
                else:
                    trials = np.empty(ctx.num_trials)
                    for j in range(ctx.num_trials):
                        trials[j] = spec.func.compute(values_arr[ix], trial_w[ix, j])
                if spec.func.scales_with_m:
                    trials = trials * scale
                vals = per_group.setdefault(key, {})
                vals[spec.name] = (point, trials)
                exist_trials.setdefault(key, trial_w[ix].sum(axis=0) > 0)
                exist_point.setdefault(key, bool(rows.mult[ix].sum() > 0))

    # -- publishing ------------------------------------------------------------------

    def _publish(
        self,
        ctx: RuntimeContext,
        per_group: dict[GroupKey, dict[str, object]],
        exist_trials: dict[GroupKey, np.ndarray],
        exist_point: dict[GroupKey, bool],
    ) -> None:
        value_cols = [s.name for s in self.specs]
        rollup_on = ctx.config.rollup and self.rollup_eligible
        if rollup_on:
            # Persistent output: hot groups overwrite in place (keeping
            # their first-published position, which equals the rollup-off
            # publication order), migrated groups ride along untouched,
            # and the unstable tail (volatile-only keys, tombstones) is
            # re-appended fresh each batch. This path is taken whenever
            # the feature is on — even with no migrations yet — so the
            # order cannot drift when the sketch is compacted/extended by
            # a migrate/demote cycle mid-run.
            output = self._output
            output.version += 1
            output.new_keys = []
            for key in output.tail_keys:
                output.groups.pop(key, None)
            output.tail_keys = []
        else:
            output = BlockOutput(self.block_id, self.group_by, value_cols)
        obs_on = ctx.obs.enabled
        width_hist = (
            ctx.obs.metrics.histogram("range.width", block=str(self.block_id))
            if obs_on
            else None
        )
        # Vectorized mode batches the range estimation per spec column —
        # one (G, T) reduction instead of G scalar observe() calls — with
        # bit-identical bounds (see RangeMonitor.observe_batch).
        batched_ranges: dict[str, list] | None = None
        if ctx.config.vectorize and per_group:
            keys_order = list(per_group)
            batched_ranges = {}
            for spec in self.specs:
                points = np.fromiter(
                    (float(per_group[k][spec.name][0]) for k in keys_order),  # type: ignore[index]
                    dtype=np.float64,
                    count=len(keys_order),
                )
                trials_mat = np.vstack(
                    [
                        np.asarray(per_group[k][spec.name][1], dtype=np.float64)  # type: ignore[index]
                        for k in keys_order
                    ]
                )
                batched_ranges[spec.name] = ctx.monitor.observe_batch(
                    self.block_id, spec.name, keys_order, ctx.batch_no, points, trials_mat
                )
        for row_i, (key, raw) in enumerate(per_group.items()):
            values: dict[str, object] = {}
            for gi, col_name in enumerate(self.group_by):
                values[col_name] = key[gi]
            for spec in self.specs:
                point, trials = raw[spec.name]  # type: ignore[misc]
                if batched_ranges is not None:
                    vrange = batched_ranges[spec.name][row_i]
                else:
                    vrange = ctx.monitor.observe(
                        (self.block_id, key, spec.name),
                        ctx.batch_no,
                        float(point),
                        trials,
                    )
                if width_hist is not None and vrange is not None:
                    width_hist.observe(vrange.width)
                values[spec.name] = UncertainValue(
                    float(point),
                    trials,
                    vrange,
                    LineageRef(self.block_id, key, spec.name),
                )
            certain = key in self.certain_groups
            group = GroupValue(
                key,
                values,
                certain,
                member_point=certain or exist_point.get(key, True),
                exist_trials=None if certain else exist_trials.get(key),
            )
            output.publish(group, is_new=key not in self._published_keys)
            self._published_keys.add(key)
        # Groups that vanished (all their volatile contributors currently
        # excluded) stay visible with empty existence, so downstream
        # lineage references keep resolving. Sorted so the tombstone order
        # (and hence the output's group iteration order) does not depend
        # on set hashing. Migrated groups are published, just not
        # recomputed — they are not tombstones.
        vanished = self._published_keys - set(per_group)
        if rollup_on:
            vanished -= set(self._rollup.entries)
        for key in sorted(vanished):
            tomb = self._tombstones.get(key)
            if tomb is None:
                values = {c: k for c, k in zip(self.group_by, key)}
                for spec in self.specs:
                    values[spec.name] = UncertainValue(
                        float("nan"),
                        np.full(ctx.num_trials, np.nan),
                        lineage=LineageRef(self.block_id, key, spec.name),
                    )
                tomb = GroupValue(
                    key,
                    values,
                    certain=False,
                    member_point=False,
                    exist_trials=np.zeros(ctx.num_trials, dtype=bool),
                )
                self._tombstones[key] = tomb
            output.groups[key] = tomb
        ctx.metrics.nd_groups += len(per_group)
        if rollup_on:
            rollup = self._rollup
            ctx.metrics.rollup_groups += len(rollup)
            sketch_keys = self.sketch.key_to_gid
            output.tail_keys = [
                k for k in per_group if k not in sketch_keys
            ] + sorted(vanished)
            self.state.put("output", output)
            if obs_on:
                ctx.obs.metrics.gauge("rollup.groups", op=self.label).set(
                    len(rollup)
                )
                ctx.obs.metrics.gauge("rollup.nd_groups", op=self.label).set(
                    len(per_group)
                )
                if len(rollup):
                    ctx.obs.metrics.counter("rollup.hits", op=self.label).inc(
                        len(rollup)
                    )
        if obs_on:
            ctx.obs.metrics.gauge("block.groups", op=self.label).set(
                len(output.groups)
            )
        ctx.blocks[self.block_id] = output
