"""Virtual SINK for aggregate-free pipelines (plain SPJ queries)."""

from __future__ import annotations

from repro.core.blocks import RuntimeContext
from repro.core.operators.base import DeltaBatch, SpineOp, StateRule, TagRule
from repro.relational.relation import Relation


class RowSinkOp(SpineOp):
    """Accumulates permanently emitted rows; the current result is the
    accumulation plus this batch's volatile contribution."""

    #: Result accumulation state: permanently emitted rows plus the most
    #: recent volatile contribution (replaced, never merged, per batch).
    tag_rule = TagRule(consumes_uncertain="allowed")
    state_rule = StateRule(frozenset({"accumulated", "volatile"}))

    def __init__(self, child: SpineOp):
        super().__init__("sink", child.schema, child.uncertain_cols, (child,))
        self.child = child
        self._init_state()

    def _init_state(self) -> None:
        self.state.put("accumulated", None)
        self.state.put("volatile", None)

    @property
    def accumulated(self) -> Relation | None:
        return self.state.get("accumulated")

    @accumulated.setter
    def accumulated(self, value: Relation | None) -> None:
        self.state.put("accumulated", value)

    @property
    def current_volatile(self) -> Relation | None:
        return self.state.get("volatile")

    @current_volatile.setter
    def current_volatile(self, value: Relation | None) -> None:
        self.state.put("volatile", value)

    def process(self, delta: DeltaBatch, ctx: RuntimeContext) -> DeltaBatch:
        if self.accumulated is None:
            self.accumulated = delta.certain
        else:
            self.accumulated = self.accumulated.concat(delta.certain)
        self.current_volatile = delta.volatile
        return DeltaBatch(delta.certain, delta.volatile)

    def result(self, ctx: RuntimeContext) -> Relation:
        acc = self.accumulated if self.accumulated is not None else self.empty(ctx)
        if self.current_volatile is None or len(self.current_volatile) == 0:
            return acc
        return acc.concat(self.current_volatile)
