"""PROJECT and RENAME over a stream (stateless, pure delta rules)."""

from __future__ import annotations

import numpy as np

from repro.core.blocks import RuntimeContext
from repro.core.operators.base import DeltaBatch, SpineOp, StateRule, TagRule
from repro.errors import UnsupportedQueryError
from repro.relational.algebra import Project
from repro.relational.relation import Relation
from repro.relational.schema import Schema


class ProjectOp(SpineOp):
    """PROJECT over a stream. Uncertain columns may only pass through
    unchanged (computation over uncertain attributes is deferred to the
    use sites — the lazy-evaluation principle)."""

    #: Stateless pure delta rule; uncertain attributes may pass through
    #: by name but must not be computed over (checked at construction).
    tag_rule = TagRule(consumes_uncertain="allowed")
    state_rule = StateRule()

    def __init__(self, child: SpineOp, node: Project, schema: Schema):
        uncertain_out = set()
        from repro.relational.expressions import Col

        for name, expr in node.outputs:
            touched = expr.attrs() & child.uncertain_cols
            if touched:
                if not isinstance(expr, Col):
                    raise UnsupportedQueryError(
                        f"projection {name!r} computes over uncertain columns "
                        f"{sorted(touched)}; move the computation into the "
                        "consuming predicate or aggregate (lazy evaluation)"
                    )
                uncertain_out.add(name)
        super().__init__(f"project:{node.node_id}", schema, uncertain_out, (child,))
        self.child = child
        self.node = node

    def process(self, delta: DeltaBatch, ctx: RuntimeContext) -> DeltaBatch:
        return DeltaBatch(self._project(delta.certain), self._project(delta.volatile))

    def _project(self, rel: Relation) -> Relation:
        cols: dict[str, np.ndarray] = {}
        for (name, expr), column in zip(self.node.outputs, self.schema):
            values = expr.evaluate(rel)
            if name in self.uncertain_cols:
                cols[name] = np.asarray(values, dtype=object)
            else:
                cols[name] = np.asarray(values, dtype=column.ctype.dtype)
        return Relation(self.schema, cols, rel.mult, rel.trial_mults)


class RenameOp(SpineOp):
    #: Stateless pure delta rule; tags flow through under the renaming.
    tag_rule = TagRule(consumes_uncertain="allowed")
    state_rule = StateRule()

    def __init__(self, child: SpineOp, mapping: dict[str, str], schema: Schema):
        renamed = {mapping.get(c, c) for c in child.uncertain_cols}
        super().__init__("rename", schema, renamed, (child,))
        self.child = child
        self.mapping = mapping

    def process(self, delta: DeltaBatch, ctx: RuntimeContext) -> DeltaBatch:
        return DeltaBatch(
            delta.certain.rename(self.mapping), delta.volatile.rename(self.mapping)
        )
