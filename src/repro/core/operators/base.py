"""Operator base class, dataflow message, and the pipeline driver.

Online operators follow a formal lifecycle, driven from the outside:

* ``open(ctx)`` — once per run, before the first batch: registers the
  operator's :class:`~repro.state.StateStore` with the engine's state
  registry (for accounting and checkpoint/restore);
* ``process(delta, ctx)`` — once per batch: consumes the child outputs
  (``delta`` is ``None`` for leaves, a :class:`DeltaBatch` for unary
  operators, and a list of them for n-ary operators) and returns this
  operator's :class:`DeltaBatch`;
* ``state_items()`` — introspection over the named state entries;
* ``close()`` — once per run, after the last batch.

Operators never call into their children: :func:`drive_pipeline` walks
the operator tree bottom-up, feeding each operator its inputs and
recording per-operator wall time into ``BatchMetrics.op_seconds``. This
keeps operator logic, state management, and scheduling in separate
layers (the executor picks which pipelines run concurrently; the driver
sequences operators within one pipeline).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import ClassVar, Iterator

import numpy as np

from repro.core.blocks import RuntimeContext
from repro.core.classify import ClassifyResult
from repro.relational.expressions import Expression
from repro.relational.relation import Relation
from repro.relational.schema import Schema
from repro.state import InMemoryStateStore


@dataclass
class DeltaBatch:
    """Per-batch dataflow message between online operators.

    * ``certain`` — rows emitted *permanently* this batch. Their
      multiplicity can only be confirmed, never revoked (modulo failure
      recovery), so downstream aggregates fold them into sketches and
      forget them.
    * ``volatile`` — the full current contribution of non-deterministic
      rows, recomputed every batch. Downstream operators recompute
      whatever depends on them, which is exactly the recomputation
      iOLAP's optimizations keep small.
    """

    certain: Relation
    volatile: Relation

    @property
    def total_rows(self) -> int:
        return len(self.certain) + len(self.volatile)


@dataclass(frozen=True)
class TagRule:
    """Declarative Appendix-A tag behaviour of one operator class.

    The ``repro.analysis`` plan typechecker consumes these specs to check
    that the compiler placed each operator exactly where its uncertainty
    tags (``u#``/``uA``) allow:

    * ``consumes_uncertain`` — whether the operator's own expressions may
      read uncertain attributes of its input: ``"forbidden"`` (a purely
      deterministic variant exists and must be used instead),
      ``"required"`` (the operator only makes sense over uncertain
      attributes), or ``"allowed"`` (pass-through either way);
    * ``introduces_nd`` — the operator can move tuples into a
      non-deterministic set (``u# = T`` decisions it must re-examine);
    * ``resets_tags`` — output tags are the operator's own (an AGGREGATE
      publishes a lineage block; input tags do not flow through).
    """

    consumes_uncertain: str = "allowed"
    introduces_nd: bool = False
    resets_tags: bool = False


@dataclass(frozen=True)
class StateRule:
    """Declarative §4.2 state contract of one operator class.

    ``entries`` is the exact set of named :class:`~repro.state.StateStore`
    entries the operator owns between batches (seeded by ``_init_state``);
    ``nd_entry`` names the non-deterministic cache among them, if any.
    The typechecker checks the entries against the store, and the
    ``--verify`` runtime verifier re-checks them after every ``process``
    call, so stray between-batch state cannot hide in instance attributes.
    """

    entries: frozenset[str] = frozenset()
    nd_entry: str | None = None
    #: Entries that alias a published lineage block (e.g. the persistent
    #: rollup-path block output): the race detector checks the backing
    #: block is produced by the owning unit alone (RACE301).
    block_backed: frozenset[str] = frozenset()

    def __post_init__(self) -> None:
        if self.nd_entry is not None and self.nd_entry not in self.entries:
            raise ValueError(
                f"nd_entry {self.nd_entry!r} missing from entries {set(self.entries)!r}"
            )
        if not set(self.block_backed) <= set(self.entries):
            raise ValueError(
                f"block_backed {set(self.block_backed)!r} not a subset of "
                f"entries {set(self.entries)!r}"
            )


def empty_relation(schema: Schema, uncertain_cols: set[str], num_trials: int) -> Relation:
    """Empty relation whose uncertain columns use object dtype (refs)."""
    cols = {}
    for c in schema:
        dtype = np.dtype(object) if c.name in uncertain_cols else c.ctype.dtype
        cols[c.name] = np.empty(0, dtype=dtype)
    return Relation(
        schema, cols, np.empty(0), np.empty((0, num_trials), dtype=np.float64)
    )


class SpineOp:
    """Base class of online operators in a stream pipeline."""

    #: Declarative analyzer specs; every concrete operator class overrides
    #: these (checked statically by ``repro.analysis.typecheck`` and
    #: dynamically by the ``--verify`` contract mode).
    tag_rule: ClassVar[TagRule] = TagRule()
    state_rule: ClassVar[StateRule] = StateRule()

    def __init__(
        self,
        label: str,
        schema: Schema,
        uncertain_cols: set[str],
        children: tuple["SpineOp", ...] = (),
    ):
        self.label = label
        self.schema = schema
        self.uncertain_cols = set(uncertain_cols)
        self.children: tuple[SpineOp, ...] = tuple(children)
        #: Named between-batch state. Standalone operators (unit tests)
        #: own a private store; ``open`` registers it with the engine.
        self.state = InMemoryStateStore()

    # -- lifecycle ---------------------------------------------------------------

    def open(self, ctx: RuntimeContext) -> None:
        """Register state with the engine before the first batch."""
        for child in self.children:
            child.open(ctx)
        ctx.stores.adopt(self.label, self.state)

    def process(self, delta: object, ctx: RuntimeContext) -> DeltaBatch:
        """Consume the child outputs for one batch.

        ``delta`` is ``None`` for leaf operators, a :class:`DeltaBatch`
        for unary operators, and a ``list[DeltaBatch]`` (child order)
        for n-ary operators.
        """
        raise NotImplementedError

    def state_items(self) -> list[tuple[str, object]]:
        """Current named state entries of this operator (not children)."""
        return list(self.state.items())

    def close(self) -> None:
        """Release per-run resources after the last batch."""
        for child in self.children:
            child.close()

    # -- state / metrics ---------------------------------------------------------

    def _init_state(self) -> None:
        """Seed the store's entries; called at construction and reset."""

    def reset(self) -> None:
        """Drop all inter-batch state (used by failure recovery)."""
        self.state.clear()
        self._init_state()
        for child in self.children:
            child.reset()

    def record_state(self, ctx: RuntimeContext) -> None:
        """Report the subtree's state footprint into the batch metrics."""
        nbytes = self.state.estimated_bytes()
        if nbytes:
            ctx.metrics.add_state(self.label, nbytes)
        if ctx.obs.enabled:
            self._record_state_metrics(ctx)
        for child in self.children:
            child.record_state(ctx)

    def _record_state_metrics(self, ctx: RuntimeContext) -> None:
        """Per-entry state gauges: bytes per named store entry, split into
        the pruned (ND cache) vs resolved shares of the §4.2 contract."""
        reg = ctx.obs.metrics
        nd_entry = self.state_rule.nd_entry
        nd_bytes = resolved_bytes = 0
        for name, nbytes in self.state.entry_bytes().items():
            reg.gauge("state.entry.bytes", op=self.label, entry=name).set(nbytes)
            if name == nd_entry:
                nd_bytes += nbytes
            else:
                resolved_bytes += nbytes
        reg.gauge("state.nd_bytes", op=self.label).set(nd_bytes)
        reg.gauge("state.resolved_bytes", op=self.label).set(resolved_bytes)
        reg.gauge("state.writes", op=self.label).set(self.state.writes)

    # -- conveniences ------------------------------------------------------------

    def run(self, ctx: RuntimeContext) -> DeltaBatch:
        """Drive the subtree rooted here for one batch (post-order)."""
        return drive_pipeline(self, ctx)

    def empty(self, ctx: RuntimeContext) -> Relation:
        return empty_relation(self.schema, self.uncertain_cols, ctx.num_trials)


def drive_pipeline(root: SpineOp, ctx: RuntimeContext) -> DeltaBatch:
    """Evaluate an operator tree bottom-up for one batch.

    Each operator's ``process`` is timed individually (children are
    evaluated outside the parent's clock), so ``op_seconds`` reports
    true self time per operator.
    """
    inputs = [drive_pipeline(child, ctx) for child in root.children]
    if not inputs:
        delta: object = None
    elif len(inputs) == 1:
        delta = inputs[0]
    else:
        delta = inputs
    verifier = ctx.verifier
    if verifier is not None:
        verifier.before_process(root, delta, ctx)
    sanitizer = ctx.sanitizer
    if sanitizer is None:
        out = _timed_process(root, delta, ctx)
    else:
        sanitizer.before_process(root, delta, ctx)
        try:
            out = _timed_process(root, delta, ctx)
        except ValueError as err:
            violation = sanitizer.translate_write_error(root, delta, ctx, err)
            if violation is None:
                raise
            raise violation from err
        finally:
            sanitizer.release(root)
        sanitizer.note_output(root, out)
    if verifier is not None:
        verifier.after_process(root, delta, ctx)
    return out


def _timed_process(root: SpineOp, delta: object, ctx: RuntimeContext) -> DeltaBatch:
    tracer = ctx.obs.tracer
    if tracer.enabled:
        with tracer.span(
            "op", cat="op", batch=ctx.batch_no,
            op=root.label, kind=type(root).__name__,
        ) as span:
            started = time.perf_counter()
            out = root.process(delta, ctx)
            ctx.metrics.add_op_seconds(root.label, time.perf_counter() - started)
            rows_in = _delta_rows(delta)
            span.set(rows_in=rows_in, rows_out=out.total_rows)
            reg = ctx.obs.metrics
            reg.counter("op.rows_in", op=root.label).inc(rows_in)
            reg.counter("op.rows_out", op=root.label).inc(out.total_rows)
    elif ctx.obs.metrics.enabled:
        # Metrics-only session (continuous profiler without tracing):
        # record row throughput, skip span allocation entirely.
        started = time.perf_counter()
        out = root.process(delta, ctx)
        ctx.metrics.add_op_seconds(root.label, time.perf_counter() - started)
        reg = ctx.obs.metrics
        reg.counter("op.rows_in", op=root.label).inc(_delta_rows(delta))
        reg.counter("op.rows_out", op=root.label).inc(out.total_rows)
    else:
        started = time.perf_counter()
        out = root.process(delta, ctx)
        ctx.metrics.add_op_seconds(root.label, time.perf_counter() - started)
    return out


def _delta_rows(delta: object) -> int:
    """Total input rows of a ``process`` call (any arity)."""
    if delta is None:
        return 0
    if isinstance(delta, DeltaBatch):
        return delta.total_rows
    return sum(d.total_rows for d in delta)


def iter_ops(root: SpineOp) -> Iterator[SpineOp]:
    """All operators of a pipeline, root first."""
    yield root
    for child in root.children:
        yield from iter_ops(child)


# -- helpers shared across operator modules ---------------------------------------


def filter_det(rel: Relation, predicate: Expression) -> Relation:
    """Apply a fully deterministic predicate."""
    if len(rel) == 0:
        return rel
    mask = np.asarray(predicate.evaluate(rel), dtype=bool)
    return rel.filter(mask)


def subset_masks(
    res: ClassifyResult, keep: np.ndarray, ctx: RuntimeContext
) -> tuple[np.ndarray, np.ndarray]:
    return res.point[keep], res.trial_matrix(ctx.num_trials)[keep]


def mask_contribution(
    rel: Relation, masks: tuple[np.ndarray, np.ndarray]
) -> Relation:
    """Volatile contribution of ND rows: zero out failed decisions."""
    point, trials = masks
    mult = rel.mult * point
    trial_mults = (
        rel.trial_mults * trials
        if rel.trial_mults is not None
        else rel.mult[:, None] * trials
    )
    keep = point | trials.any(axis=1)
    return Relation._from_parts(
        rel.schema,
        {n: a[keep] for n, a in rel.columns.items()},
        mult[keep],
        trial_mults[keep],
        **rel._map_sidecars("take", keep),
    )
