"""Operator base class, dataflow message, and the pipeline driver.

Online operators follow a formal lifecycle, driven from the outside:

* ``open(ctx)`` — once per run, before the first batch: registers the
  operator's :class:`~repro.state.StateStore` with the engine's state
  registry (for accounting and checkpoint/restore);
* ``process(delta, ctx)`` — once per batch: consumes the child outputs
  (``delta`` is ``None`` for leaves, a :class:`DeltaBatch` for unary
  operators, and a list of them for n-ary operators) and returns this
  operator's :class:`DeltaBatch`;
* ``state_items()`` — introspection over the named state entries;
* ``close()`` — once per run, after the last batch.

Operators never call into their children: :func:`drive_pipeline` walks
the operator tree bottom-up, feeding each operator its inputs and
recording per-operator wall time into ``BatchMetrics.op_seconds``. This
keeps operator logic, state management, and scheduling in separate
layers (the executor picks which pipelines run concurrently; the driver
sequences operators within one pipeline).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.core.blocks import RuntimeContext
from repro.core.classify import ClassifyResult
from repro.relational.expressions import Expression
from repro.relational.relation import Relation
from repro.relational.schema import Schema
from repro.state import InMemoryStateStore


@dataclass
class DeltaBatch:
    """Per-batch dataflow message between online operators.

    * ``certain`` — rows emitted *permanently* this batch. Their
      multiplicity can only be confirmed, never revoked (modulo failure
      recovery), so downstream aggregates fold them into sketches and
      forget them.
    * ``volatile`` — the full current contribution of non-deterministic
      rows, recomputed every batch. Downstream operators recompute
      whatever depends on them, which is exactly the recomputation
      iOLAP's optimizations keep small.
    """

    certain: Relation
    volatile: Relation

    @property
    def total_rows(self) -> int:
        return len(self.certain) + len(self.volatile)


def empty_relation(schema: Schema, uncertain_cols: set[str], num_trials: int) -> Relation:
    """Empty relation whose uncertain columns use object dtype (refs)."""
    cols = {}
    for c in schema:
        dtype = np.dtype(object) if c.name in uncertain_cols else c.ctype.dtype
        cols[c.name] = np.empty(0, dtype=dtype)
    return Relation(
        schema, cols, np.empty(0), np.empty((0, num_trials), dtype=np.float64)
    )


class SpineOp:
    """Base class of online operators in a stream pipeline."""

    def __init__(
        self,
        label: str,
        schema: Schema,
        uncertain_cols: set[str],
        children: tuple["SpineOp", ...] = (),
    ):
        self.label = label
        self.schema = schema
        self.uncertain_cols = set(uncertain_cols)
        self.children: tuple[SpineOp, ...] = tuple(children)
        #: Named between-batch state. Standalone operators (unit tests)
        #: own a private store; ``open`` registers it with the engine.
        self.state = InMemoryStateStore()

    # -- lifecycle ---------------------------------------------------------------

    def open(self, ctx: RuntimeContext) -> None:
        """Register state with the engine before the first batch."""
        for child in self.children:
            child.open(ctx)
        ctx.stores.adopt(self.label, self.state)

    def process(self, delta: object, ctx: RuntimeContext) -> DeltaBatch:
        """Consume the child outputs for one batch.

        ``delta`` is ``None`` for leaf operators, a :class:`DeltaBatch`
        for unary operators, and a ``list[DeltaBatch]`` (child order)
        for n-ary operators.
        """
        raise NotImplementedError

    def state_items(self) -> list[tuple[str, object]]:
        """Current named state entries of this operator (not children)."""
        return list(self.state.items())

    def close(self) -> None:
        """Release per-run resources after the last batch."""
        for child in self.children:
            child.close()

    # -- state / metrics ---------------------------------------------------------

    def _init_state(self) -> None:
        """Seed the store's entries; called at construction and reset."""

    def reset(self) -> None:
        """Drop all inter-batch state (used by failure recovery)."""
        self.state.clear()
        self._init_state()
        for child in self.children:
            child.reset()

    def record_state(self, ctx: RuntimeContext) -> None:
        """Report the subtree's state footprint into the batch metrics."""
        nbytes = self.state.estimated_bytes()
        if nbytes:
            ctx.metrics.add_state(self.label, nbytes)
        for child in self.children:
            child.record_state(ctx)

    # -- conveniences ------------------------------------------------------------

    def run(self, ctx: RuntimeContext) -> DeltaBatch:
        """Drive the subtree rooted here for one batch (post-order)."""
        return drive_pipeline(self, ctx)

    def empty(self, ctx: RuntimeContext) -> Relation:
        return empty_relation(self.schema, self.uncertain_cols, ctx.num_trials)


def drive_pipeline(root: SpineOp, ctx: RuntimeContext) -> DeltaBatch:
    """Evaluate an operator tree bottom-up for one batch.

    Each operator's ``process`` is timed individually (children are
    evaluated outside the parent's clock), so ``op_seconds`` reports
    true self time per operator.
    """
    inputs = [drive_pipeline(child, ctx) for child in root.children]
    if not inputs:
        delta: object = None
    elif len(inputs) == 1:
        delta = inputs[0]
    else:
        delta = inputs
    started = time.perf_counter()
    out = root.process(delta, ctx)
    ctx.metrics.add_op_seconds(root.label, time.perf_counter() - started)
    return out


def iter_ops(root: SpineOp) -> Iterator[SpineOp]:
    """All operators of a pipeline, root first."""
    yield root
    for child in root.children:
        yield from iter_ops(child)


# -- helpers shared across operator modules ---------------------------------------


def filter_det(rel: Relation, predicate: Expression) -> Relation:
    """Apply a fully deterministic predicate."""
    if len(rel) == 0:
        return rel
    mask = np.asarray(predicate.evaluate(rel), dtype=bool)
    return rel.filter(mask)


def subset_masks(
    res: ClassifyResult, keep: np.ndarray, ctx: RuntimeContext
) -> tuple[np.ndarray, np.ndarray]:
    return res.point[keep], res.trial_matrix(ctx.num_trials)[keep]


def mask_contribution(
    rel: Relation, masks: tuple[np.ndarray, np.ndarray]
) -> Relation:
    """Volatile contribution of ND rows: zero out failed decisions."""
    point, trials = masks
    mult = rel.mult * point
    trial_mults = (
        rel.trial_mults * trials
        if rel.trial_mults is not None
        else rel.mult[:, None] * trials
    )
    keep = point | trials.any(axis=1)
    return Relation(
        rel.schema,
        {n: a[keep] for n, a in rel.columns.items()},
        mult[keep],
        trial_mults[keep],
    )
