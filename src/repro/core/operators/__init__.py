"""Online operator implementations (Sections 4.2, 5.2, 6.2).

These operators form the *stream pipelines* of a compiled online query:
the incremental dataflow over the streamed fact table. Each operator
consumes and produces a :class:`DeltaBatch` per mini-batch:

* ``certain`` — rows emitted *permanently* this batch. Their multiplicity
  can only be confirmed, never revoked (modulo failure recovery), so
  downstream aggregates fold them into sketches and forget them.
* ``volatile`` — the full current contribution of non-deterministic rows,
  recomputed every batch. Downstream operators recompute whatever depends
  on them, which is exactly the recomputation iOLAP's optimizations keep
  small.

Row-level bootstrap state rides along as the relation's ``mult`` (current
point decision) and ``trial_mults`` (per-trial decisions), so a single
mechanism covers both partial-result semantics and error estimation.

State kept between batches follows the paper's delta-update principle:
tuple uncertainty is resolved as early as possible (SELECT/JOIN
non-deterministic stores, re-classified each batch against variation
ranges), attribute uncertainty as late as possible (lineage references
resolved lazily at use sites). Each operator's between-batch state lives
in a named :class:`~repro.state.StateStore` (see
:mod:`repro.core.operators.base` for the lifecycle contract).
"""

from repro.core.operators.aggregate import AggregateOp
from repro.core.operators.base import (
    DeltaBatch,
    SpineOp,
    StateRule,
    TagRule,
    drive_pipeline,
    empty_relation,
    iter_ops,
)
from repro.core.operators.filter import FilterOp, UncertainFilterOp
from repro.core.operators.join import StaticJoinOp, UncertainJoinOp
from repro.core.operators.project import ProjectOp, RenameOp
from repro.core.operators.scan import ScanOp, StaticEmitOp
from repro.core.operators.sink import RowSinkOp
from repro.core.operators.union import UnionOp

__all__ = [
    "AggregateOp",
    "DeltaBatch",
    "FilterOp",
    "ProjectOp",
    "RenameOp",
    "RowSinkOp",
    "ScanOp",
    "SpineOp",
    "StateRule",
    "StaticEmitOp",
    "StaticJoinOp",
    "TagRule",
    "UncertainFilterOp",
    "UncertainJoinOp",
    "UnionOp",
    "drive_pipeline",
    "empty_relation",
    "iter_ops",
]
