"""SELECT operators: deterministic delta rule and the ND-store variant."""

from __future__ import annotations

import numpy as np

from repro.core.blocks import RuntimeContext
from repro.core.classify import (
    FALSE,
    PENDING,
    TRUE,
    UNKNOWN,
    ClassifyResult,
    classify_comparison,
    combine_conjuncts,
)
from repro.core.operators.base import (
    DeltaBatch,
    SpineOp,
    StateRule,
    TagRule,
    filter_det,
    mask_contribution,
    subset_masks,
)
from repro.core.sentinels import SentinelStore
from repro.relational.expressions import Comparison, Expression
from repro.relational.relation import Relation


class FilterOp(SpineOp):
    """SELECT with a fully deterministic predicate — pure delta rule."""

    #: A deterministic SELECT must never read uncertain attributes (the
    #: compiler must emit UncertainFilterOp there) and keeps no state: the
    #: §4.2 SELECT rule over certain input is a pure delta rule.
    tag_rule = TagRule(consumes_uncertain="forbidden")
    state_rule = StateRule()

    def __init__(self, child: SpineOp, predicate: Expression):
        super().__init__(
            f"filter:{id(predicate):x}", child.schema, child.uncertain_cols, (child,)
        )
        self.child = child
        self.predicate = predicate

    def process(self, delta: DeltaBatch, ctx: RuntimeContext) -> DeltaBatch:
        return DeltaBatch(
            filter_det(delta.certain, self.predicate),
            filter_det(delta.volatile, self.predicate),
        )


class UncertainFilterOp(SpineOp):
    """SELECT whose predicate touches uncertain attributes (Section 5.2).

    Maintains the non-deterministic store ``U_i``; classifies new rows and
    re-classifies the store against current variation ranges each batch.
    Rows resolve to TRUE (emitted permanently), FALSE (dropped forever),
    or stay non-deterministic and contribute to the volatile output with
    their current point decision and per-trial decisions.
    """

    #: SELECT over uncertain attributes keeps the non-deterministic set
    #: U_i ("nd") plus the sentinel guards of its pruned decisions — the
    #: §4.2/§5.2 state rule for uncertain predicates.
    tag_rule = TagRule(consumes_uncertain="required", introduces_nd=True)
    state_rule = StateRule(frozenset({"nd", "sentinels"}), nd_entry="nd")

    def __init__(
        self,
        child: SpineOp,
        det_conjuncts: list[Expression],
        uncertain_conjuncts: list[Comparison],
        node_id: int,
    ):
        super().__init__(
            f"select:{node_id}", child.schema, child.uncertain_cols, (child,)
        )
        self.child = child
        self.det_conjuncts = det_conjuncts
        self.uncertain_conjuncts = uncertain_conjuncts
        self._init_state()

    def _init_state(self) -> None:
        self.state.put("nd", None)
        self.state.put(
            "sentinels",
            SentinelStore(self.uncertain_conjuncts, set(self.uncertain_cols)),
        )

    @property
    def nd_store(self) -> Relation | None:
        return self.state.get("nd")

    @nd_store.setter
    def nd_store(self, value: Relation | None) -> None:
        self.state.put("nd", value)

    @property
    def sentinels(self) -> SentinelStore:
        return self.state.get("sentinels")

    # -- helpers ---------------------------------------------------------------

    def _classify(
        self, rel: Relation, ctx: RuntimeContext
    ) -> tuple[ClassifyResult, list[ClassifyResult]]:
        results = [
            classify_comparison(cmp, rel, self.uncertain_cols, ctx)
            for cmp in self.uncertain_conjuncts
        ]
        return combine_conjuncts(results, ctx.num_trials), results

    def _record_sentinels(
        self,
        rel: Relation,
        combined: ClassifyResult,
        per_conjunct: list[ClassifyResult],
        ctx: RuntimeContext,
    ) -> None:
        """Guard every permanent action with a sentinel (see sentinels.py).

        Emitted rows needed ALL conjuncts stably true; dropped rows needed
        the specific conjuncts that were stably false."""
        vectorize = ctx.config.vectorize
        emitted = np.flatnonzero(combined.status == TRUE)
        dropped = combined.status == FALSE
        for idx, res in enumerate(per_conjunct):
            if len(emitted):
                self.sentinels.record(
                    idx,
                    rel,
                    emitted,
                    np.ones(len(emitted), dtype=bool),
                    vectorize=vectorize,
                    batch_no=ctx.batch_no,
                )
            conj_false = np.flatnonzero(dropped & (res.status == FALSE))
            if len(conj_false):
                self.sentinels.record(
                    idx,
                    rel,
                    conj_false,
                    np.zeros(len(conj_false), dtype=bool),
                    vectorize=vectorize,
                    batch_no=ctx.batch_no,
                )

    def _apply_det(self, rel: Relation) -> Relation:
        for pred in self.det_conjuncts:
            rel = filter_det(rel, pred)
        return rel

    # -- processing ---------------------------------------------------------------

    def process(self, delta: DeltaBatch, ctx: RuntimeContext) -> DeltaBatch:
        new_rows = self._apply_det(delta.certain)
        vol_in = self._apply_det(delta.volatile)

        if not ctx.config.lazy_lineage and self.nd_store is not None:
            # OPT2 off: regenerate cached rows from scratch — re-run the
            # deterministic conjuncts over the store as well, modelling the
            # re-execution of the upstream chain for each cached tuple.
            store = self.nd_store
            self.nd_store = self._apply_det(
                Relation(
                    store.schema,
                    {n: a.copy() for n, a in store.columns.items()},
                    store.mult.copy(),
                    None if store.trial_mults is None else store.trial_mults.copy(),
                )
            )

        # Integrity: every previously pruned decision must still hold for
        # the current estimates; a flip triggers failure recovery.
        ctx.fault("sentinel", self.label)
        self.sentinels.check(ctx)

        res_new, per_new = self._classify(new_rows, ctx)
        self._record_sentinels(new_rows, res_new, per_new, ctx)

        store = self.nd_store if self.nd_store is not None else self.empty(ctx)
        ctx.metrics.recomputed_tuples += len(store) + len(vol_in)
        if len(store):
            res_old, per_old = self._classify(store, ctx)
            self._record_sentinels(store, res_old, per_old, ctx)
        else:
            res_old = None

        certain_parts = [new_rows.filter(res_new.status == TRUE)]
        keep_new = new_rows.filter(
            (res_new.status == UNKNOWN) | (res_new.status == PENDING)
        )
        masks_new = subset_masks(
            res_new, (res_new.status == UNKNOWN) | (res_new.status == PENDING), ctx
        )

        if res_old is not None:
            certain_parts.append(store.filter(res_old.status == TRUE))
            undecided = (res_old.status == UNKNOWN) | (res_old.status == PENDING)
            keep_old = store.filter(undecided)
            masks_old = subset_masks(res_old, undecided, ctx)
        else:
            keep_old = self.empty(ctx)
            masks_old = None

        self.nd_store = keep_old.concat(keep_new)

        volatile_parts = []
        if len(keep_old) and masks_old is not None:
            volatile_parts.append(mask_contribution(keep_old, masks_old))
        if len(keep_new):
            volatile_parts.append(mask_contribution(keep_new, masks_new))
        if len(vol_in):
            res_vol, _ = self._classify(vol_in, ctx)
            volatile_parts.append(
                mask_contribution(
                    vol_in, (res_vol.point, res_vol.trial_matrix(ctx.num_trials))
                )
            )

        certain = certain_parts[0]
        for part in certain_parts[1:]:
            certain = certain.concat(part)
        volatile = self.empty(ctx)
        for part in volatile_parts:
            volatile = volatile.concat(part)
        if ctx.obs.enabled:
            reg = ctx.obs.metrics
            nd = self.nd_store
            reg.gauge("nd.rows", op=self.label).set(0 if nd is None else len(nd))
            reg.gauge("sentinels", op=self.label).set(len(self.sentinels))
        return DeltaBatch(certain, volatile)
