"""Interpreter for *small* plan segments over lineage-block outputs.

Everything in a query that does not touch the streamed fact table
row-by-row — HAVING clauses, scalar comparisons between aggregates,
aggregates of aggregates, IN-subquery membership views — operates on the
small outputs of lineage blocks. iOLAP recomputes these segments every
batch (they are tiny), but does so *uncertainty-aware*:

* every row carries its membership classification (stable-in, stable-out,
  or unknown) derived from variation ranges, so stream-side consumers can
  prune near-deterministic tuples (Section 5.2);
* every row carries per-bootstrap-trial existence, and aggregate values
  carry per-trial values, so the piggybacked bootstrap stays faithful
  through arbitrarily nested blocks;
* aggregate segments publish their own block outputs (with monitored
  variation ranges), making nesting compositional.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.core.blocks import (
    MEMBER_FALSE,
    MEMBER_TRUE,
    MEMBER_UNKNOWN,
    BlockOutput,
    GroupKey,
    GroupValue,
    RuntimeContext,
)
from repro.core.values import LineageRef, UncertainValue, VariationRange, point_of, range_of, trials_of
from repro.errors import UnsupportedQueryError
from repro.relational.aggregates import AggSpec
from repro.relational.expressions import Comparison, Expression
from repro.relational.relation import Relation


@dataclass
class URow:
    """One row of a small segment, with uncertainty bookkeeping."""

    values: dict[str, object]
    #: Existence/membership is fully settled (stable-in).
    certain: bool = True
    member_status: int = MEMBER_TRUE
    member_point: bool = True
    exist_trials: np.ndarray | None = None

    def exists(self, num_trials: int) -> np.ndarray:
        if self.exist_trials is None:
            return np.ones(num_trials, dtype=bool)
        return self.exist_trials


class SmallNode:
    """Base class of small-segment plan nodes."""

    def rows(self, ctx: RuntimeContext) -> list[URow]:
        raise NotImplementedError


def iter_small_nodes(root: SmallNode):
    """All nodes of a small segment, root first."""
    stack = [root]
    while stack:
        node = stack.pop()
        yield node
        child = getattr(node, "child", None)
        if child is not None:
            stack.append(child)
        left = getattr(node, "left", None)
        if left is not None:
            stack.append(left)
        right = getattr(node, "right", None)
        if right is not None:
            stack.append(right)


class SmallBlockLeaf(SmallNode):
    """Reads the current output of a lineage block."""

    def __init__(self, block_id: int):
        self.block_id = block_id
        #: Identity-keyed URow cache (rollup runs): a rollup-tier group's
        #: ``GroupValue`` is the same object batch over batch, so its
        #: URow can be reused instead of re-materializing the values
        #: dict per batch — which would keep the small-segment cost
        #: proportional to the total group count. ``key -> (group, urow)``;
        #: a hit requires the cached group *identity*, so any republished
        #: group misses. Downstream small nodes never mutate a leaf URow
        #: in place (selects ``replace``, projects/joins build new dicts),
        #: which is what makes reuse safe.
        self._urow_cache: dict[tuple, tuple[object, URow]] = {}

    def rows(self, ctx: RuntimeContext) -> list[URow]:
        output = ctx.blocks.get(self.block_id)
        if output is None:
            return []
        out = []
        if ctx.config.rollup:
            cache = self._urow_cache
            fresh: dict[tuple, tuple[object, URow]] = {}
            for key, group in output.groups.items():
                hit = cache.get(key)
                if hit is not None and hit[0] is group:
                    urow = hit[1]
                else:
                    urow = URow(
                        dict(group.values),
                        certain=group.certain,
                        member_status=(
                            MEMBER_TRUE if group.certain else MEMBER_UNKNOWN
                        ),
                        member_point=group.member_point,
                        exist_trials=group.exist_trials,
                    )
                fresh[key] = (group, urow)
                out.append(urow)
            self._urow_cache = fresh
            return out
        for group in output.groups.values():
            out.append(
                URow(
                    dict(group.values),
                    certain=group.certain,
                    member_status=MEMBER_TRUE if group.certain else MEMBER_UNKNOWN,
                    member_point=group.member_point,
                    exist_trials=group.exist_trials,
                )
            )
        return out


class SmallStaticLeaf(SmallNode):
    """Reads a fully static relation (a dimension table)."""

    def __init__(self, relation: Relation):
        self.relation = relation

    def rows(self, ctx: RuntimeContext) -> list[URow]:
        return [URow(self.relation.row(i)) for i in range(len(self.relation))]


class SmallSelect(SmallNode):
    """σ over small rows, with range-based membership classification.

    Stable-false rows are *retained* with ``MEMBER_FALSE`` so that
    stream-side consumers (semi-joins) can distinguish "stably filtered
    out" from "group not yet seen"; every other consumer skips them.
    """

    def __init__(self, child: SmallNode, conjuncts: list[Expression]):
        self.child = child
        self.conjuncts = conjuncts

    def rows(self, ctx: RuntimeContext) -> list[URow]:
        out = []
        for row in self.child.rows(ctx):
            if row.member_status == MEMBER_FALSE:
                out.append(row)
                continue
            out.append(self._apply(row, ctx))
        return out

    def _apply(self, row: URow, ctx: RuntimeContext) -> URow:
        status = row.member_status
        point = row.member_point
        trials = row.exist_trials
        certain = row.certain
        for pred in self.conjuncts:
            p_status, p_point, p_trials, _sources = classify_row_predicate(
                pred, row.values, ctx.num_trials
            )
            if p_status == MEMBER_FALSE:
                return replace(row, member_status=MEMBER_FALSE, member_point=False)
            if p_status == MEMBER_UNKNOWN:
                status = MEMBER_UNKNOWN if status == MEMBER_TRUE else status
                certain = False
                trials = p_trials if trials is None else (trials & p_trials)
            point = point and p_point
        return URow(
            row.values,
            certain=certain,
            member_status=status,
            member_point=point,
            exist_trials=trials,
        )


class SmallProject(SmallNode):
    """π over small rows; uncertain-value arithmetic propagates trials
    and ranges through the projection expressions."""

    def __init__(self, child: SmallNode, outputs: list[tuple[str, Expression]]):
        self.child = child
        self.outputs = outputs

    def rows(self, ctx: RuntimeContext) -> list[URow]:
        out = []
        for row in self.child.rows(ctx):
            values = {
                name: expr.evaluate_row(row.values) for name, expr in self.outputs
            }
            out.append(replace(row, values=values))
        return out


class SmallRename(SmallNode):
    def __init__(self, child: SmallNode, mapping: dict[str, str]):
        self.child = child
        self.mapping = mapping

    def rows(self, ctx: RuntimeContext) -> list[URow]:
        out = []
        for row in self.child.rows(ctx):
            values = {self.mapping.get(k, k): v for k, v in row.values.items()}
            out.append(replace(row, values=values))
        return out


class SmallDistinct(SmallNode):
    """Duplicate elimination; memberships of duplicates OR together."""

    def __init__(self, child: SmallNode, columns: list[str]):
        self.child = child
        self.columns = columns

    def rows(self, ctx: RuntimeContext) -> list[URow]:
        merged: dict[GroupKey, URow] = {}
        for row in self.child.rows(ctx):
            key = tuple(point_of_key(row.values[c]) for c in self.columns)
            slim = URow(
                {c: row.values[c] for c in self.columns},
                certain=row.certain and row.member_status == MEMBER_TRUE,
                member_status=row.member_status,
                member_point=row.member_point,
                exist_trials=row.exist_trials,
            )
            prev = merged.get(key)
            merged[key] = slim if prev is None else _or_membership(prev, slim, ctx)
        return list(merged.values())


def _or_membership(a: URow, b: URow, ctx: RuntimeContext) -> URow:
    status: int
    if MEMBER_TRUE in (a.member_status, b.member_status):
        status = MEMBER_TRUE
    elif MEMBER_UNKNOWN in (a.member_status, b.member_status):
        status = MEMBER_UNKNOWN
    else:
        status = MEMBER_FALSE
    return URow(
        a.values,
        certain=a.certain or b.certain,
        member_status=status,
        member_point=a.member_point or b.member_point,
        exist_trials=(
            None
            if a.exist_trials is None or b.exist_trials is None
            else (a.exist_trials | b.exist_trials)
        ),
    )


class SmallJoin(SmallNode):
    """Equi/cross join between two small inputs; memberships AND together."""

    def __init__(self, left: SmallNode, right: SmallNode, keys: list[tuple[str, str]]):
        self.left = left
        self.right = right
        self.keys = keys

    def rows(self, ctx: RuntimeContext) -> list[URow]:
        left_rows = [
            r for r in self.left.rows(ctx) if r.member_status != MEMBER_FALSE
        ]
        right_rows = [
            r for r in self.right.rows(ctx) if r.member_status != MEMBER_FALSE
        ]
        index: dict[GroupKey, list[URow]] = {}
        for r in right_rows:
            key = tuple(point_of_key(r.values[rk]) for _, rk in self.keys)
            index.setdefault(key, []).append(r)
        out = []
        drop = {rk for _, rk in self.keys}
        for l in left_rows:
            key = tuple(point_of_key(l.values[lk]) for lk, _ in self.keys)
            for r in index.get(key, []):
                values = dict(l.values)
                values.update(
                    {k: v for k, v in r.values.items() if k not in drop}
                )
                status = min(l.member_status, r.member_status, key=_status_rank)
                lt = l.exist_trials
                rt = r.exist_trials
                out.append(
                    URow(
                        values,
                        certain=l.certain and r.certain,
                        member_status=status,
                        member_point=l.member_point and r.member_point,
                        exist_trials=(
                            lt
                            if rt is None
                            else rt
                            if lt is None
                            else (lt & rt)
                        ),
                    )
                )
        return out


def _status_rank(status: int) -> int:
    # AND-combination order: FALSE < UNKNOWN < TRUE.
    return {MEMBER_FALSE: 0, MEMBER_UNKNOWN: 1, MEMBER_TRUE: 2}[status]


class SmallAggregate(SmallNode):
    """γ over small rows — the per-trial recompute path.

    The actual result aggregates rows by their current point membership;
    trial ``j`` aggregates rows existing in trial ``j`` using trial-``j``
    argument values. Publishes a block output (with monitored variation
    ranges), so further nesting and stream-side pruning compose.
    """

    def __init__(
        self,
        child: SmallNode,
        group_by: list[str],
        specs: list[AggSpec],
        block_id: int,
    ):
        self.child = child
        self.group_by = group_by
        self.specs = specs
        self.block_id = block_id

    def rows(self, ctx: RuntimeContext) -> list[URow]:
        in_rows = [
            r for r in self.child.rows(ctx) if r.member_status != MEMBER_FALSE
        ]
        ctx.metrics.recomputed_tuples += len(in_rows)
        t = ctx.num_trials
        groups: dict[GroupKey, list[URow]] = {}
        for row in in_rows:
            key = tuple(point_of_key(row.values[c]) for c in self.group_by)
            groups.setdefault(key, []).append(row)
        if not self.group_by and not groups:
            # A scalar aggregate always yields one row, even over an empty
            # input (COUNT -> 0, AVG -> NaN), matching the batch evaluator.
            groups[()] = []

        output = BlockOutput(self.block_id, self.group_by, [s.name for s in self.specs])
        out_rows: list[URow] = []
        for key, members in groups.items():
            point_w = np.array([float(r.member_point) for r in members])
            exist = (
                np.vstack([r.exists(t) for r in members])
                if members
                else np.zeros((0, t), dtype=bool)
            )  # (n, T)
            values: dict[str, object] = {
                c: key[i] for i, c in enumerate(self.group_by)
            }
            for spec in self.specs:
                arg_point, arg_trials = _argument_matrix(spec, members, t)
                point = spec.func.compute(arg_point, point_w)
                trials = np.empty(t)
                for j in range(t):
                    trials[j] = spec.func.compute(
                        arg_trials[:, j], exist[:, j].astype(np.float64)
                    )
                vrange = ctx.monitor.observe(
                    (self.block_id, key, spec.name), ctx.batch_no, point, trials
                )
                values[spec.name] = UncertainValue(
                    point, trials, vrange, LineageRef(self.block_id, key, spec.name)
                )
            certain = any(
                r.certain and r.member_status == MEMBER_TRUE for r in members
            )
            exist_any = exist.any(axis=0)
            group = GroupValue(
                key,
                values,
                certain,
                exist_trials=None if certain else exist_any,
            )
            output.publish(group, is_new=True)
            out_rows.append(
                URow(
                    dict(values),
                    certain=certain,
                    member_status=MEMBER_TRUE if certain else MEMBER_UNKNOWN,
                    member_point=bool(point_w.any()),
                    exist_trials=None if certain else exist_any,
                )
            )
        ctx.blocks[self.block_id] = output
        return out_rows


def _argument_matrix(
    spec: AggSpec, members: list[URow], num_trials: int
) -> tuple[np.ndarray, np.ndarray]:
    """Point and per-trial argument values of an aggregate over urows."""
    n = len(members)
    if spec.arg is None:
        return np.ones(n), np.ones((n, num_trials))
    point = np.empty(n)
    trials = np.empty((n, num_trials))
    for i, row in enumerate(members):
        value = spec.arg.evaluate_row(row.values)
        point[i] = point_of(value)
        trials[i] = trials_of(value, num_trials)
    return point, trials


def classify_row_predicate(
    pred: Expression, values: dict[str, object], num_trials: int
) -> tuple[int, bool, np.ndarray | None, tuple]:
    """Classify one predicate over one small row.

    Returns ``(member status, current point decision, per-trial decisions
    or None, lineage sources involved)``. Non-comparison predicates must
    be deterministic over the row (checked at compile time for stream
    pipelines; here we verify at runtime because small rows mix certain
    and uncertain cells).
    """
    if isinstance(pred, Comparison):
        left = pred.left.evaluate_row(values)
        right = pred.right.evaluate_row(values)
        if not isinstance(left, UncertainValue) and not isinstance(
            right, UncertainValue
        ):
            ok = bool(_point_compare(pred.op, left, right))
            return (MEMBER_TRUE if ok else MEMBER_FALSE), ok, None, ()
        sources = tuple(
            dict.fromkeys(
                getattr(left, "sources", ()) + getattr(right, "sources", ())
            )
        )
        lr, rr = range_of(left), range_of(right)
        status = _range_compare(pred.op, lr, rr)
        point = bool(_point_compare(pred.op, point_of(left), point_of(right)))
        if status != MEMBER_UNKNOWN:
            return status, point, None, sources
        lt = trials_of(left, num_trials)
        rt = trials_of(right, num_trials)
        with np.errstate(invalid="ignore"):
            trials = _point_compare(pred.op, lt, rt)
        return MEMBER_UNKNOWN, point, np.asarray(trials, dtype=bool), sources
    # Boolean combinators / UDF predicates: require determinism.
    result = pred.evaluate_row(values)
    ok = bool(result)
    return (MEMBER_TRUE if ok else MEMBER_FALSE), ok, None, ()


def _point_compare(op: str, a, b):
    if op == ">":
        return a > b
    if op == ">=":
        return a >= b
    if op == "<":
        return a < b
    if op == "<=":
        return a <= b
    if op == "==":
        return a == b
    return a != b


def _range_compare(op: str, a: VariationRange, b: VariationRange) -> int:
    if op in (">", ">="):
        if (a.lo > b.hi) if op == ">" else (a.lo >= b.hi):
            return MEMBER_TRUE
        if (a.hi <= b.lo) if op == ">" else (a.hi < b.lo):
            return MEMBER_FALSE
        return MEMBER_UNKNOWN
    if op in ("<", "<="):
        flipped = ">" if op == "<" else ">="
        return _range_compare(flipped, b, a)
    if op == "==":
        if a.is_point and b.is_point and a.lo == b.lo:
            return MEMBER_TRUE
        if not a.intersects(b):
            return MEMBER_FALSE
        return MEMBER_UNKNOWN
    # "!=" mirrors "==".
    inner = _range_compare("==", a, b)
    if inner == MEMBER_TRUE:
        return MEMBER_FALSE
    if inner == MEMBER_FALSE:
        return MEMBER_TRUE
    return MEMBER_UNKNOWN


def point_of_key(value: object) -> object:
    """Group/join keys must be deterministic; unwrap defensively."""
    if isinstance(value, UncertainValue):
        raise UnsupportedQueryError(
            "group/join key over an uncertain value is not supported"
        )
    return value


@dataclass
class SmallPlanUnit:
    """An executable small segment: evaluate, then publish and/or expose.

    ``publish_id`` registers the segment's rows as a joinable view in the
    block registry (keyed by ``key_cols``); the root segment of a query
    instead exposes its rows as the final result via :meth:`result_rows`.
    """

    root: SmallNode
    publish_id: int | None = None
    key_cols: list[str] = field(default_factory=list)
    value_cols: list[str] = field(default_factory=list)
    _last_rows: list[URow] = field(default_factory=list)

    def run(self, ctx: RuntimeContext) -> None:
        rows = self.root.rows(ctx)
        self._last_rows = rows
        if self.publish_id is None:
            return
        output = BlockOutput(self.publish_id, self.key_cols, self.value_cols)
        for row in rows:
            key = tuple(point_of_key(row.values[c]) for c in self.key_cols)
            output.publish(
                GroupValue(
                    key,
                    row.values,
                    certain=row.certain and row.member_status == MEMBER_TRUE,
                    member_status=row.member_status,
                    member_point=row.member_point,
                    exist_trials=row.exist_trials,
                ),
                is_new=True,
            )
        ctx.blocks[self.publish_id] = output

    def result_rows(self) -> list[URow]:
        """Rows currently in the result (stable-false ones excluded)."""
        return [
            r
            for r in self._last_rows
            if r.member_status != MEMBER_FALSE and r.member_point
        ]
