"""Range-based predicate classification (Sections 5.1–5.2).

Given rows whose columns may hold uncertain values (either
:class:`~repro.core.values.UncertainValue` cells or
:class:`~repro.core.values.LineageRef` cells resolved against the block
registry), a comparison ``x ϑ y`` splits its input into:

* ``TRUE``  — ``R(x)`` and ``R(y)`` ordered so the predicate holds for
  every possible value: the row is *near-deterministically selected*;
* ``FALSE`` — ordered the other way: near-deterministically filtered;
* ``UNKNOWN`` — ranges overlap: the row joins the non-deterministic set
  ``U_i`` and must be re-evaluated each batch;
* ``PENDING`` — a lineage reference points at a group that no block has
  published yet, so the row cannot be evaluated at all this batch.

For UNKNOWN rows the classifier also produces the *current* decision
(from point estimates, defining this batch's partial result) and the
per-bootstrap-trial decisions (from trial values, which keep the
piggybacked bootstrap faithful: trial ``j`` filters with trial ``j``'s
inner aggregate, as if the whole simulated database were re-run).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.blocks import RuntimeContext
from repro.core.values import LineageRef, UncertainValue
from repro.errors import UnsupportedQueryError
from repro.kernels import resolve as kresolve
from repro.relational.expressions import Col, Comparison, Expression
from repro.relational.relation import Relation

TRUE, FALSE, UNKNOWN, PENDING = np.int8(1), np.int8(0), np.int8(2), np.int8(3)


@dataclass
class SideValues:
    """Evaluated values of one side of a comparison, for every row."""

    lo: np.ndarray  # (n,) lower range bounds
    hi: np.ndarray  # (n,) upper range bounds
    point: np.ndarray  # (n,) current estimates
    trials: np.ndarray | None  # (n, T); None means "equal to point"
    pending: np.ndarray  # (n,) bool: unresolvable lineage refs
    #: Block cells whose ranges these values derive from (for arming).
    refs: set = None  # type: ignore[assignment]

    def trial_matrix(self, num_trials: int) -> np.ndarray:
        if self.trials is not None:
            return self.trials
        # Read-only broadcast view: every consumer copies (fancy-index,
        # ufunc result, or explicit .copy()) before writing.
        return np.broadcast_to(self.point[:, None], (len(self.point), num_trials))


@dataclass
class ClassifyResult:
    """Classification of one conjunct (or a conjunction) over n rows."""

    status: np.ndarray  # (n,) int8 in {TRUE, FALSE, UNKNOWN, PENDING}
    point: np.ndarray  # (n,) bool current decision
    trials: np.ndarray | None  # (n, T) bool per-trial decision

    def trial_matrix(self, num_trials: int) -> np.ndarray:
        if self.trials is not None:
            return self.trials
        return np.broadcast_to(self.point[:, None], (len(self.point), num_trials))


def evaluate_side(
    expr: Expression,
    rel: Relation,
    uncertain_cols: set[str],
    ctx: RuntimeContext,
) -> SideValues:
    """Evaluate one comparison side, with ranges and trials."""
    n = len(rel)
    touched = expr.attrs() & uncertain_cols
    if not touched:
        vals = np.asarray(expr.evaluate(rel), dtype=np.float64)
        return SideValues(vals, vals, vals, None, np.zeros(n, dtype=bool), set())

    if isinstance(expr, Col):
        return _resolve_column(
            rel.column(expr.name), n, ctx, rel.lineage.get(expr.name)
        )

    if ctx.config.vectorize:
        out = kresolve.try_evaluate_side(expr, rel, uncertain_cols, ctx)
        if out is not None:
            return SideValues(*out)

    # General path: per-row evaluation with UncertainValue arithmetic.
    lo = np.empty(n)
    hi = np.empty(n)
    point = np.empty(n)
    trials = np.empty((n, ctx.num_trials))
    pending = np.zeros(n, dtype=bool)
    refs: set = set()
    cache: dict[object, object] = {}
    for i in range(n):
        row = rel.row(i)
        bad = False
        for name in touched:
            cell = row[name]
            resolved = _resolve_cell(cell, ctx, cache)
            if resolved is None:
                bad = True
                break
            row[name] = resolved
        if bad:
            pending[i] = True
            lo[i] = hi[i] = point[i] = np.nan
            trials[i] = np.nan
            continue
        value = expr.evaluate_row(row)
        if isinstance(value, UncertainValue):
            lo[i], hi[i] = value.vrange.lo, value.vrange.hi
            point[i] = value.value
            trials[i] = value.trials
            refs.update(value.sources)
        else:
            lo[i] = hi[i] = point[i] = float(value)  # type: ignore[arg-type]
            trials[i] = float(value)  # type: ignore[arg-type]
    return SideValues(lo, hi, point, trials, pending, refs)


def _resolve_column(
    column: np.ndarray, n: int, ctx: RuntimeContext, lineage=None
) -> SideValues:
    """Fast path: a bare uncertain column of refs / uncertain values.

    ``lineage`` is the column's structured sidecar when the producing
    operator attached one (``UncertainJoinOp._attach_coded``): the
    vectorized kernel then walks int32 slots and the ND bitmask instead
    of ``isinstance``-scanning the cell objects. The row-wise reference
    below ignores it by design.
    """
    if ctx.config.vectorize:
        return SideValues(*kresolve.resolve_column(column, n, ctx, lineage))
    lo = np.empty(n)
    hi = np.empty(n)
    point = np.empty(n)
    trials = np.empty((n, ctx.num_trials))
    pending = np.zeros(n, dtype=bool)
    refs: set = set()
    cache: dict[object, object] = {}
    for i in range(n):
        value = _resolve_cell(column[i], ctx, cache)
        if value is None:
            pending[i] = True
            lo[i] = hi[i] = point[i] = np.nan
            trials[i] = np.nan
        elif isinstance(value, UncertainValue):
            lo[i], hi[i] = value.vrange.lo, value.vrange.hi
            point[i] = value.value
            trials[i] = value.trials
            refs.update(value.sources)
        else:
            lo[i] = hi[i] = point[i] = float(value)
            trials[i] = float(value)
    return SideValues(lo, hi, point, trials, pending, refs)


def _resolve_cell(
    cell: object, ctx: RuntimeContext, cache: dict[object, object]
) -> object | None:
    """Resolve a cell to a concrete (possibly uncertain) value."""
    if isinstance(cell, LineageRef):
        if cell in cache:
            return cache[cell]
        resolved = ctx.resolve(cell)
        cache[cell] = resolved
        return resolved
    return cell


def classify_comparison(
    cmp: Comparison,
    rel: Relation,
    uncertain_cols: set[str],
    ctx: RuntimeContext,
) -> ClassifyResult:
    """Classify one comparison conjunct over all rows of ``rel``."""
    left = evaluate_side(cmp.left, rel, uncertain_cols, ctx)
    right = evaluate_side(cmp.right, rel, uncertain_cols, ctx)
    n = len(rel)
    op = cmp.op

    if op in (">", ">="):
        always = left.lo > right.hi if op == ">" else left.lo >= right.hi
        never = left.hi <= right.lo if op == ">" else left.hi < right.lo
    elif op in ("<", "<="):
        always = left.hi < right.lo if op == "<" else left.hi <= right.lo
        never = left.lo >= right.hi if op == "<" else left.lo > right.hi
    elif op == "==":
        always = (left.lo == left.hi) & (right.lo == right.hi) & (left.lo == right.lo)
        never = (left.hi < right.lo) | (right.hi < left.lo)
    elif op == "!=":
        never = (left.lo == left.hi) & (right.lo == right.hi) & (left.lo == right.lo)
        always = (left.hi < right.lo) | (right.hi < left.lo)
    else:  # pragma: no cover - Comparison validates its operator
        raise UnsupportedQueryError(f"cannot classify comparison {op!r}")

    status = np.full(n, UNKNOWN, dtype=np.int8)
    status[always] = TRUE
    status[never] = FALSE
    pending = left.pending | right.pending
    status[pending] = PENDING

    point = _compare(op, left.point, right.point)
    point[pending] = False
    trials: np.ndarray | None = None
    if np.any(status == UNKNOWN):
        lt = left.trial_matrix(ctx.num_trials)
        rt = right.trial_matrix(ctx.num_trials)
        trials = _compare(op, lt, rt)
        trials[pending] = False
    return ClassifyResult(status, point, trials)


def _compare(op: str, a: np.ndarray, b: np.ndarray) -> np.ndarray:
    with np.errstate(invalid="ignore"):
        if op == ">":
            return a > b
        if op == ">=":
            return a >= b
        if op == "<":
            return a < b
        if op == "<=":
            return a <= b
        if op == "==":
            return a == b
        return a != b


def combine_conjuncts(results: list[ClassifyResult], num_trials: int) -> ClassifyResult:
    """AND together per-conjunct classifications.

    A row is FALSE if any conjunct is stably false (drop forever), PENDING
    if any conjunct cannot be evaluated, UNKNOWN if any conjunct is
    unresolved, TRUE only when every conjunct is stably true.
    """
    if len(results) == 1:
        return results[0]
    status = results[0].status.copy()
    point = results[0].point.copy()
    trials = None
    for r in results[1:]:
        point &= r.point
        status = _combine_status(status, r.status)
    if np.any(status == UNKNOWN):
        trials = results[0].trial_matrix(num_trials).copy()
        for r in results[1:]:
            trials &= r.trial_matrix(num_trials)
    return ClassifyResult(status, point, trials)


def _combine_status(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    out = np.full(len(a), TRUE, dtype=np.int8)
    unknown = (a == UNKNOWN) | (b == UNKNOWN)
    out[unknown] = UNKNOWN
    pending = (a == PENDING) | (b == PENDING)
    out[pending] = PENDING
    false = (a == FALSE) | (b == FALSE)
    out[false] = FALSE
    return out
