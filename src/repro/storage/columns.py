"""Dictionary pages and encoded key columns.

PR 4's ``repro.kernels.codec`` factorized key columns per call and
memoized the result per relation; this module promotes that factorization
into the column format itself. A :class:`DictPage` is an append-only
dictionary of distinct cell values; an :class:`EncodedColumn` is the
``(page, codes, null_mask)`` triple riding alongside a materialized
object column. Pages are shared across every slice, batch, and join
output derived from a table, so group-bys and joins consume int codes
directly instead of re-hashing Python objects each hop.

Equality contract: a page assigns codes with exactly the semantics of
``codec._dict_factorize_column`` — values compare the way dict keys
compare (hash + equality, with the identity shortcut that keeps each NaN
object its own key), and unhashable values raise ``TypeError`` so the
caller leaves the column unencoded and the existing fallbacks apply.

Pages are *append-only*: encoding new values never reassigns existing
codes, which is what lets old slices keep their code buffers while new
chunks extend the dictionary. This is the single sanctioned mutation in
the storage plane (see ENG006).
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

#: dtype of code and slot buffers throughout the storage plane.
CODE_DTYPE = np.int32


def _scalar_nbytes(value: object) -> int:
    """Flat footprint of one dictionary value (store.py conventions)."""
    if value is None:
        return 0
    if isinstance(value, str):
        return 49 + len(value)
    return 8


class DictPage:
    """Append-only dictionary of distinct cell values.

    ``values[code]`` is the canonical Python object for ``code``. Codes
    are assigned in first-appearance order across every ``encode`` call,
    and never change once assigned.
    """

    __slots__ = ("_mapping", "_values", "_array", "__weakref__")

    def __init__(self) -> None:
        self._mapping: dict = {}
        self._values: list = []
        self._array: np.ndarray | None = None

    def __len__(self) -> int:
        return len(self._values)

    @property
    def values(self) -> np.ndarray:
        """The dictionary as an object array (rebuilt lazily after growth)."""
        if self._array is None or len(self._array) != len(self._values):
            arr = np.empty(len(self._values), dtype=object)
            arr[:] = self._values
            self._array = arr
        return self._array

    def tolist(self) -> list:
        return list(self._values)

    def encode_values(self, values: Iterable) -> np.ndarray:
        """Codes for ``values``, appending unseen ones to the page."""
        mapping = self._mapping
        store = self._values
        missing = object()  # None is a legal cell value
        out = []
        for value in values:
            code = mapping.get(value, missing)
            if code is missing:
                code = len(store)
                mapping[value] = code
                store.append(value)
            out.append(code)
        return np.asarray(out, dtype=CODE_DTYPE)

    def encode_array(self, arr: np.ndarray) -> tuple[np.ndarray, np.ndarray | None]:
        """Encode one column; returns ``(codes, null_mask-or-None)``.

        The null mask marks cells that are ``None`` (SQL NULL in this
        engine's modelling); it is ``None`` when no cell is null.
        """
        codes = self.encode_values(arr.tolist())
        null_mask = None
        if None in self._mapping:
            null_mask = np.asarray(codes == self._mapping[None], dtype=bool)
            if not null_mask.any():
                null_mask = None
        return codes, null_mask

    def gather(self, codes: np.ndarray) -> np.ndarray:
        """Materialize ``codes`` into an object column of canonical cells."""
        return self.values[codes]

    def estimated_bytes(self) -> int:
        return 64 + sum(16 + _scalar_nbytes(v) for v in self._values)


class EncodedColumn:
    """One dictionary-encoded column: shared page + per-row codes + null mask.

    Index operations mirror :class:`~repro.relational.relation.Relation`
    transformations and always reuse the page, so a table's dictionary is
    carried across operators. Code buffers obtained from ``slice`` are
    zero-copy views; callers must not write into them (ENG006).
    """

    __slots__ = ("page", "codes", "null_mask")

    def __init__(
        self,
        page: DictPage,
        codes: np.ndarray,
        null_mask: np.ndarray | None = None,
    ) -> None:
        self.page = page
        self.codes = codes
        self.null_mask = null_mask

    def __len__(self) -> int:
        return len(self.codes)

    @classmethod
    def encode(cls, arr: np.ndarray, page: DictPage | None = None) -> "EncodedColumn":
        """Encode a materialized column (appending to ``page`` if given)."""
        page = page if page is not None else DictPage()
        codes, null_mask = page.encode_array(arr)
        return cls(page, codes, null_mask)

    # -- index operations (parallel to Relation transformations) ----------------

    def take(self, indices: np.ndarray) -> "EncodedColumn":
        mask = None if self.null_mask is None else self.null_mask[indices]
        return EncodedColumn(self.page, self.codes[indices], mask)

    def slice(self, start: int, stop: int) -> "EncodedColumn":
        mask = None if self.null_mask is None else self.null_mask[start:stop]
        return EncodedColumn(self.page, self.codes[start:stop], mask)

    def concat(self, other: "EncodedColumn") -> "EncodedColumn":
        """Concatenate, translating ``other`` onto this page if needed."""
        other_codes = other.codes
        if other.page is not self.page:
            # Append-only pages make translation a one-shot gather: encode
            # the other dictionary once, then remap its codes.
            trans = self.page.encode_values(other.page.tolist())
            other_codes = trans[other.codes] if len(other.codes) else other.codes
        codes = np.concatenate([self.codes, other_codes]).astype(CODE_DTYPE, copy=False)
        mask = None
        if self.null_mask is not None or other.null_mask is not None:
            a = (
                self.null_mask
                if self.null_mask is not None
                else np.zeros(len(self.codes), dtype=bool)
            )
            b = (
                other.null_mask
                if other.null_mask is not None
                else np.zeros(len(other_codes), dtype=bool)
            )
            mask = np.concatenate([a, b])
        return EncodedColumn(self.page, codes, mask)

    # -- materialization / accounting ---------------------------------------------

    def materialize(self) -> np.ndarray:
        return self.page.gather(self.codes)

    def estimated_bytes(self, seen: set[int] | None = None) -> int:
        """Physical footprint; a shared page counts once per ``seen`` set."""
        total = int(self.codes.nbytes)
        if self.null_mask is not None:
            total += int(self.null_mask.nbytes)
        if seen is None or id(self.page) not in seen:
            if seen is not None:
                seen.add(id(self.page))
            total += self.page.estimated_bytes()
        return total


def encode_relation(rel, columns: Sequence[str] | None = None):
    """Dictionary-encode object columns of ``rel``; returns a new relation.

    Materialized cells are rebuilt from the page gather, so every row
    holding an equal value holds the *same* canonical object — the page
    codes and the cell objects can never disagree. Columns whose cells are
    unhashable are left unencoded (the codec falls back as before).
    """
    from repro.relational.relation import Relation

    names = list(columns) if columns is not None else [
        c.name for c in rel.schema if rel.columns[c.name].dtype.kind == "O"
    ]
    cols = dict(rel.columns)
    encodings = dict(rel.encodings)
    for name in names:
        arr = rel.columns[name]
        if arr.dtype.kind != "O":
            continue
        try:
            enc = EncodedColumn.encode(arr)
        except TypeError:
            continue
        encodings[name] = enc
        cols[name] = enc.materialize()
    return Relation._from_parts(
        rel.schema,
        cols,
        rel.mult,
        rel.trial_mults,
        encodings=encodings,
        lineage=dict(rel.lineage),
    )


def sidecar_nbytes(rel, seen: set[int] | None = None) -> int:
    """Byte accounting for a relation's storage sidecars.

    Shared dictionary pages and lineage pools are deduplicated through
    ``seen`` (by ``id``), so two slices of one encoded table count the
    page once. Used by ``repro.state.store.estimate_nbytes``.
    """
    seen = seen if seen is not None else set()
    total = 0
    for enc in rel.encodings.values():
        total += enc.estimated_bytes(seen)
    for lin in rel.lineage.values():
        total += lin.estimated_bytes(seen)
    return total
