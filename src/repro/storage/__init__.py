"""Columnar storage plane: encoded columns, structured lineage, chunked disk tables.

This package owns the physical representation of relation data:

* :mod:`repro.storage.columns` — append-only dictionary pages and
  dictionary-encoded columns with explicit null masks. Encoding is a
  property of storage (carried across operators), not a per-call cache.
* :mod:`repro.storage.lineage` — the structured lineage sidecar: parallel
  ``(block_id, slot)`` int32 arrays plus an explicit ND bitmask, replacing
  object arrays of :class:`~repro.core.values.LineageRef` on hot paths.
* :mod:`repro.storage.chunks` / :mod:`repro.storage.ingest` — the on-disk
  chunked columnar format (memory-mapped buffers, Arrow-IPC in spirit)
  and streaming ingestion, so fact tables never materialize as in-memory
  lists.

Buffer ownership: arrays handed out by this layer are shared, not copied.
All in-place writes to column/mask buffers must happen inside this
package (the ENG006 lint enforces this); engine code copies before
writing.
"""

from repro.storage.columns import (
    DictPage,
    EncodedColumn,
    encode_relation,
    sidecar_nbytes,
)
from repro.storage.chunks import ChunkWriter, DiskTable
from repro.storage.ingest import ingest_chunks, open_table, write_relation
from repro.storage.lineage import LineageColumn, lineage_from_refs

__all__ = [
    "ChunkWriter",
    "DictPage",
    "DiskTable",
    "EncodedColumn",
    "LineageColumn",
    "encode_relation",
    "ingest_chunks",
    "lineage_from_refs",
    "open_table",
    "sidecar_nbytes",
    "write_relation",
]
