"""Streaming ingestion into the on-disk chunk format.

The entry points accept an *iterable of chunks* so producers can generate
data chunk by chunk — ingesting a fact table never requires holding it in
memory. A chunk is a mapping of column name to array (or a
:class:`~repro.relational.relation.Relation`).
"""

from __future__ import annotations

from typing import Iterable, Mapping

import numpy as np

from repro.relational.relation import Relation
from repro.relational.schema import Schema
from repro.storage.chunks import ChunkWriter, DiskTable


def ingest_chunks(
    path: str,
    schema: Schema,
    chunks: Iterable[Mapping[str, np.ndarray] | Relation],
) -> DiskTable:
    """Write ``chunks`` to ``path`` one at a time; returns the reader."""
    with ChunkWriter(path, schema) as writer:
        for chunk in chunks:
            if isinstance(chunk, Relation):
                writer.append_relation(chunk)
            else:
                writer.append(chunk)
    return DiskTable(path)


def write_relation(path: str, rel: Relation, chunk_rows: int = 65536) -> DiskTable:
    """Persist an in-memory relation, re-chunked to ``chunk_rows`` rows."""

    def slices() -> Iterable[Relation]:
        for start in range(0, len(rel), chunk_rows):
            yield rel.slice(start, min(start + chunk_rows, len(rel)))
        if len(rel) == 0:
            yield rel

    return ingest_chunks(path, rel.schema, slices())


def open_table(path: str) -> DiskTable:
    """Open an existing chunk table directory."""
    return DiskTable(path)
