"""On-disk chunked columnar tables (Arrow-IPC in spirit, NumPy in practice).

A table is a directory::

    table/
      meta.json        format tag, schema, chunk row counts, dictionaries
      <column>.bin     contiguous little-endian buffer, all chunks back to back
      <column>.mask.bin   optional null bitmask (uint8, 1 = null)

Numeric columns are stored raw; ``STRING`` columns are dictionary-encoded
(int32 codes in the ``.bin`` file, the dictionary in ``meta.json``) with
one dictionary per column for the whole table — the same page then backs
every chunk's :class:`~repro.storage.columns.EncodedColumn`, so codes
remain comparable across chunks and across the operators they flow into.

Reading memory-maps each buffer (``mode="r"``): a chunk's numeric columns
are zero-copy views into the mapping, so scanning a table never
materializes it — peak memory is one chunk's object cells plus the maps.
"""

from __future__ import annotations

import json
import os
from typing import Callable, Iterator, Mapping

import numpy as np

from repro.errors import ReproError
from repro.relational.relation import Relation
from repro.relational.schema import ColumnType, Schema
from repro.storage.columns import CODE_DTYPE, DictPage, EncodedColumn

_FORMAT = "iolap-chunks-v1"

#: On-disk dtypes (explicit endianness; bool has none).
_DISK_DTYPES = {
    ColumnType.INT: "<i8",
    ColumnType.FLOAT: "<f8",
    ColumnType.BOOL: "|b1",
}
_CODES_DTYPE = "<i4"

#: Aliasing-observer hook for memmapped chunk views, installed by the
#: buffer sanitizer (``repro.analysis.sanitize``). Called as
#: ``hook(disk_table, view_relation)`` for every relation built over the
#: memory mapping; ``None`` (the default) costs one comparison per chunk.
_chunk_view_hook: Callable[["DiskTable", Relation], None] | None = None


def set_chunk_view_hook(
    hook: Callable[["DiskTable", Relation], None] | None,
) -> None:
    """Install (or clear, with ``None``) the chunk-view observer."""
    global _chunk_view_hook
    _chunk_view_hook = hook


class ChunkWriter:
    """Streaming writer: each :meth:`append` call persists one chunk.

    Buffers are flushed per append, so ingestion memory is bounded by one
    chunk regardless of table size. ``STRING`` columns grow a shared
    dictionary as new values appear (append-only, so earlier chunks'
    codes stay valid).
    """

    def __init__(self, path: str, schema: Schema):
        self.path = path
        self.schema = schema
        os.makedirs(path, exist_ok=True)
        self._chunk_rows: list[int] = []
        self._pages: dict[str, DictPage] = {}
        self._files = {}
        self._mask_files: dict[str, object] = {}
        self._has_nulls: dict[str, bool] = {}
        self._closed = False
        for col in schema:
            if col.ctype is ColumnType.STRING:
                self._pages[col.name] = DictPage()
            self._files[col.name] = open(os.path.join(path, f"{col.name}.bin"), "wb")

    def append(self, columns: Mapping[str, np.ndarray]) -> None:
        """Persist one chunk given column arrays of equal length."""
        if self._closed:
            raise ReproError("ChunkWriter is closed")
        n = None
        for col in self.schema:
            arr = np.asarray(columns[col.name])
            if n is None:
                n = len(arr)
            elif len(arr) != n:
                raise ReproError(
                    f"chunk column {col.name!r} has {len(arr)} rows, expected {n}"
                )
            if col.ctype is ColumnType.STRING:
                codes, null_mask = self._pages[col.name].encode_array(arr)
                self._files[col.name].write(
                    codes.astype(_CODES_DTYPE, copy=False).tobytes()
                )
                self._write_mask(col.name, null_mask, n)
            else:
                dtype = _DISK_DTYPES[col.ctype]
                self._files[col.name].write(arr.astype(dtype, copy=False).tobytes())
        self._chunk_rows.append(n if n is not None else 0)

    def append_relation(self, rel: Relation) -> None:
        self.append(rel.columns)

    def _write_mask(self, name: str, null_mask: np.ndarray | None, n: int) -> None:
        f = self._mask_files.get(name)
        if null_mask is None and f is None:
            return
        if f is None:
            # First nulls for this column: open the mask file and backfill
            # the already-written (null-free) rows.
            f = open(os.path.join(self.path, f"{name}.mask.bin"), "wb")
            self._mask_files[name] = f
            prior = sum(self._chunk_rows)
            if prior:
                f.write(np.zeros(prior, dtype=np.uint8).tobytes())
        if null_mask is None:
            f.write(np.zeros(n, dtype=np.uint8).tobytes())
        else:
            self._has_nulls[name] = True
            f.write(null_mask.astype(np.uint8, copy=False).tobytes())

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for f in self._files.values():
            f.close()
        for f in self._mask_files.values():
            f.close()
        meta = {
            "format": _FORMAT,
            "num_rows": sum(self._chunk_rows),
            "chunk_rows": self._chunk_rows,
            "columns": [
                {
                    "name": col.name,
                    "type": col.ctype.name,
                    "encoding": "dict" if col.ctype is ColumnType.STRING else "plain",
                    "dtype": _CODES_DTYPE
                    if col.ctype is ColumnType.STRING
                    else _DISK_DTYPES[col.ctype],
                    **(
                        {
                            "dictionary": self._pages[col.name].tolist(),
                            "has_nulls": self._has_nulls.get(col.name, False),
                        }
                        if col.ctype is ColumnType.STRING
                        else {}
                    ),
                }
                for col in self.schema
            ],
        }
        with open(os.path.join(self.path, "meta.json"), "w") as f:
            json.dump(meta, f)

    def __enter__(self) -> "ChunkWriter":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


class DiskTable:
    """Reader over a chunked table directory; buffers are memory-mapped."""

    def __init__(self, path: str):
        self.path = path
        with open(os.path.join(path, "meta.json")) as f:
            meta = json.load(f)
        if meta.get("format") != _FORMAT:
            raise ReproError(f"not an iolap chunk table: {path}")
        self.num_rows: int = meta["num_rows"]
        self.chunk_rows: list[int] = meta["chunk_rows"]
        self._starts = np.concatenate([[0], np.cumsum(self.chunk_rows)]).astype(np.intp)
        self.schema = Schema(
            [(c["name"], ColumnType[c["type"]]) for c in meta["columns"]]
        )
        self._buffers: dict[str, np.ndarray] = {}
        self._masks: dict[str, np.ndarray] = {}
        self._pages: dict[str, DictPage] = {}
        for c in meta["columns"]:
            name = c["name"]
            fname = os.path.join(path, f"{name}.bin")
            dtype = np.dtype(c["dtype"])
            if self.num_rows:
                self._buffers[name] = np.memmap(
                    fname, dtype=dtype, mode="r", shape=(self.num_rows,)
                )
            else:
                self._buffers[name] = np.empty(0, dtype=dtype)
            if c["encoding"] == "dict":
                page = DictPage()
                page.encode_values(c["dictionary"])
                self._pages[name] = page
                if c.get("has_nulls"):
                    self._masks[name] = np.memmap(
                        os.path.join(path, f"{name}.mask.bin"),
                        dtype=np.uint8,
                        mode="r",
                        shape=(self.num_rows,),
                    )

    @property
    def num_chunks(self) -> int:
        return len(self.chunk_rows)

    def page(self, name: str) -> DictPage:
        """The shared dictionary page of one encoded column."""
        return self._pages[name]

    def _slice_relation(self, start: int, stop: int) -> Relation:
        n = stop - start
        cols: dict[str, np.ndarray] = {}
        encodings: dict[str, EncodedColumn] = {}
        for col in self.schema:
            name = col.name
            buf = self._buffers[name][start:stop]
            if name in self._pages:
                codes = np.asarray(buf, dtype=CODE_DTYPE)
                mask_buf = self._masks.get(name)
                null_mask = (
                    None
                    if mask_buf is None
                    else np.asarray(mask_buf[start:stop], dtype=bool)
                )
                enc = EncodedColumn(self._pages[name], codes, null_mask)
                encodings[name] = enc
                cols[name] = enc.materialize()
            else:
                cols[name] = buf
        view = Relation._from_parts(
            self.schema,
            cols,
            np.ones(n, dtype=np.float64),
            None,
            encodings=encodings,
        )
        if _chunk_view_hook is not None:
            _chunk_view_hook(self, view)
        return view

    def chunk(self, i: int) -> Relation:
        """Chunk ``i`` as a relation; numeric columns are zero-copy views."""
        if not 0 <= i < self.num_chunks:
            raise ReproError(f"chunk {i} out of range (have {self.num_chunks})")
        return self._slice_relation(int(self._starts[i]), int(self._starts[i + 1]))

    def iter_chunks(self) -> Iterator[Relation]:
        for i in range(self.num_chunks):
            yield self.chunk(i)

    def relation(self) -> Relation:
        """The whole table as one relation (numeric columns still mapped)."""
        return self._slice_relation(0, self.num_rows)
