"""Structured lineage sidecar: int32 slot/block arrays plus an ND bitmask.

The online operators attach lineage by storing one
:class:`~repro.core.values.LineageRef` (or ``UncertainValue``) object per
cell of an object column. Classification, resolution, and sentinel
recording then have to rediscover structure with identity factorization
(``codec.factorize_cells``: an ``id()`` ufunc sweep over every row, every
batch). A :class:`LineageColumn` records that structure once, at
attachment time:

* ``slots`` — int32, row index into ``pool`` (the distinct reference
  cells, at most one per output group), ``-1`` for plain-value cells;
* ``block_ids`` — int32, index into ``blocks`` (the block-id dictionary),
  ``-1`` for plain-value cells;
* ``nd_mask`` — the explicit non-deterministic bitmask (``slots >= 0``),
  so consumers test membership with a vector compare instead of
  ``isinstance`` scans.

Pool invariant: ``pool`` holds *distinct* cell objects (each slot's cell
is constructed exactly once by the producing operator), so factorizing
``slots`` is identical to factorizing cells by identity.
"""

from __future__ import annotations

import numpy as np

from repro.storage.columns import CODE_DTYPE


class LineageColumn:
    """Lineage structure of one object column, parallel to its rows."""

    __slots__ = ("pool", "slots", "block_ids", "blocks", "_nd")

    def __init__(
        self,
        pool: np.ndarray,
        slots: np.ndarray,
        block_ids: np.ndarray,
        blocks: tuple[str, ...],
    ) -> None:
        self.pool = pool
        self.slots = slots
        self.block_ids = block_ids
        self.blocks = blocks
        self._nd: np.ndarray | None = None

    def __len__(self) -> int:
        return len(self.slots)

    @property
    def nd_mask(self) -> np.ndarray:
        """Bitmask of non-deterministic (reference-bearing) cells."""
        if self._nd is None:
            self._nd = self.slots >= 0
        return self._nd

    @property
    def all_refs(self) -> bool:
        return bool(self.nd_mask.all()) if len(self.slots) else True

    # -- index operations (parallel to Relation transformations) ----------------

    def take(self, indices: np.ndarray) -> "LineageColumn":
        return LineageColumn(
            self.pool, self.slots[indices], self.block_ids[indices], self.blocks
        )

    def slice(self, start: int, stop: int) -> "LineageColumn":
        return LineageColumn(
            self.pool, self.slots[start:stop], self.block_ids[start:stop], self.blocks
        )

    def concat(self, other: "LineageColumn") -> "LineageColumn | None":
        """Concatenate when both sides share a pool; ``None`` otherwise.

        Distinct pools would need slot translation against object
        identity — not worth it; the caller simply drops the sidecar and
        consumers fall back to identity factorization.
        """
        if other.pool is not self.pool or other.blocks != self.blocks:
            return None
        return LineageColumn(
            self.pool,
            np.concatenate([self.slots, other.slots]),
            np.concatenate([self.block_ids, other.block_ids]),
            self.blocks,
        )

    # -- consumers ----------------------------------------------------------------

    def factorized(self) -> tuple[np.ndarray, np.ndarray] | None:
        """First-appearance ``(codes, cells)`` — ``factorize_cells`` contract.

        ``cells[codes[i]] is column[i]`` for the materialized column.
        Returns ``None`` when some cells are plain values (mixed columns
        fall back to identity factorization over the objects).
        """
        if not self.all_refs:
            return None
        n = len(self.slots)
        if n == 0:
            return np.empty(0, dtype=np.intp), self.pool[:0]
        uniq, inv = np.unique(self.slots, return_inverse=True)
        inv = inv.reshape(n).astype(np.intp, copy=False)
        first_pos = np.full(len(uniq), n, dtype=np.intp)
        np.minimum.at(first_pos, inv, np.arange(n, dtype=np.intp))
        order = np.argsort(first_pos, kind="stable")
        rank = np.empty_like(order)
        rank[order] = np.arange(len(uniq), dtype=np.intp)
        return rank[inv], self.pool[uniq[order]]

    def estimated_bytes(self, seen: set[int] | None = None) -> int:
        """Physical footprint; a shared pool counts once per ``seen`` set."""
        total = int(self.slots.nbytes) + int(self.block_ids.nbytes)
        if seen is None or id(self.pool) not in seen:
            if seen is not None:
                seen.add(id(self.pool))
            total += 64 * len(self.pool)
        return total


def lineage_from_refs(block_id: str, pool: np.ndarray, slots: np.ndarray) -> LineageColumn:
    """Sidecar for an all-reference column whose refs live in one block.

    ``pool`` is the block's distinct reference cells (one per group slot);
    ``slots[i]`` indexes it for row ``i``.
    """
    slots = slots.astype(CODE_DTYPE, copy=False)
    block_ids = np.zeros(len(slots), dtype=CODE_DTYPE)
    return LineageColumn(pool, slots, block_ids, (block_id,))
