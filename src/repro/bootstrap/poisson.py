"""Poissonized bootstrap (Section 7, rewrite step 2).

The error-estimation substrate: instead of materializing resampled
datasets, each source tuple is tagged with ``T`` independent Poisson(1)
multiplicities — one per bootstrap trial. These per-trial multiplicities
ride through the plan exactly like ordinary multiplicities (filters zero
them, joins multiply them, aggregates sum them), so after any aggregate
the ``T`` per-trial results form an empirical distribution of the
estimator, from which standard errors, confidence intervals, and the
variation ranges of Section 5 are all derived.

Draws are deterministic per ``(seed, table, batch)`` so that multiple
scans of the same streamed table inside one query observe identical trial
weights — required for the bootstrap to be consistent across a query's
lineage blocks — and so that failure-recovery replays reproduce history.
"""

from __future__ import annotations

import zlib

import numpy as np


def trial_multiplicities(
    num_rows: int, num_trials: int, seed: int, table: str, batch_no: int
) -> np.ndarray:
    """A (num_rows, num_trials) matrix of Poisson(1) trial weights."""
    rng = np.random.default_rng(_derive_seed(seed, table, batch_no))
    return rng.poisson(1.0, size=(num_rows, num_trials)).astype(np.float64)


def _derive_seed(seed: int, table: str, batch_no: int) -> np.random.SeedSequence:
    # CRC32 rather than hash(): stable across processes and replays.
    table_code = zlib.crc32(table.encode("utf-8"))
    return np.random.SeedSequence(entropy=seed, spawn_key=(table_code, batch_no))


def bootstrap_stdev(trials: np.ndarray) -> float:
    """Standard error estimate from trial outputs (NaN-safe)."""
    clean = np.asarray(trials, dtype=np.float64)
    clean = clean[np.isfinite(clean)]
    return float(np.std(clean)) if len(clean) else float("nan")


def bootstrap_ci(trials: np.ndarray, level: float = 0.95) -> tuple[float, float]:
    """Percentile-bootstrap confidence interval from trial outputs."""
    clean = np.asarray(trials, dtype=np.float64)
    clean = clean[np.isfinite(clean)]
    if len(clean) == 0:
        return (float("nan"), float("nan"))
    alpha = (1.0 - level) / 2.0
    return (float(np.quantile(clean, alpha)), float(np.quantile(clean, 1.0 - alpha)))
