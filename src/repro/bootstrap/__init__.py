"""Poissonized bootstrap error estimation."""

from repro.bootstrap.analytical import (
    analytical_range,
    avg_stderr,
    count_stderr,
    sum_stderr,
)
from repro.bootstrap.poisson import (
    bootstrap_ci,
    bootstrap_stdev,
    trial_multiplicities,
)

__all__ = [
    "analytical_range",
    "avg_stderr",
    "bootstrap_ci",
    "bootstrap_stdev",
    "count_stderr",
    "sum_stderr",
    "trial_multiplicities",
]
