"""Analytical error estimation (the ABM alternative, paper Section 9).

The paper notes that its simulation bootstrap can be swapped for the
*analytical bootstrap* [39], which computes the estimator distribution in
closed form and is much faster. This module provides closed-form standard
errors for the common sampling estimators, usable as a cross-check of the
simulated trials (and exercised as such by the test suite):

Given an i.i.d.-style uniform sample of ``n`` tuples from ``N`` with
values ``x`` and the usual scale factor ``m = N/n``:

* ``SUM`` estimator ``m·Σx``:   ``se = m·√(n·Var(x)·(1 + 1/n·…)) ≈ m·√n·σ_x``
  under Poissonized resampling  ``se = m·√(Σ x²)`` exactly;
* ``COUNT`` estimator ``m·n``:  ``se = m·√n`` (Poisson counts);
* ``AVG`` estimator ``x̄``:      ``se ≈ √(Σ w(x−x̄)²)/W`` (delta method).

The Poissonized forms match what the simulation bootstrap converges to as
the number of trials grows, which is exactly the property the tests
verify.
"""

from __future__ import annotations

import math

import numpy as np


def sum_stderr(values: np.ndarray, weights: np.ndarray | None = None, scale: float = 1.0) -> float:
    """Closed-form SE of the scaled SUM under Poissonized resampling.

    Each tuple's multiplicity is an independent Poisson(1), so
    ``Var(Σ Kᵢ·wᵢxᵢ) = Σ (wᵢxᵢ)²`` and the scale multiplies through.
    """
    x = np.asarray(values, dtype=np.float64)
    w = np.ones_like(x) if weights is None else np.asarray(weights, dtype=np.float64)
    return float(scale * math.sqrt(float(((w * x) ** 2).sum())))


def count_stderr(weights: np.ndarray, scale: float = 1.0) -> float:
    """Closed-form SE of the scaled COUNT: ``Var(Σ Kᵢwᵢ) = Σ wᵢ²``."""
    w = np.asarray(weights, dtype=np.float64)
    return float(scale * math.sqrt(float((w**2).sum())))


def avg_stderr(values: np.ndarray, weights: np.ndarray | None = None) -> float:
    """Delta-method SE of the weighted mean under Poissonized resampling.

    With ``A = Σ Kᵢwᵢxᵢ`` and ``B = Σ Kᵢwᵢ``, the ratio ``A/B`` has
    ``Var ≈ Σ wᵢ²(xᵢ − x̄)² / B²``.
    """
    x = np.asarray(values, dtype=np.float64)
    w = np.ones_like(x) if weights is None else np.asarray(weights, dtype=np.float64)
    total_w = float(w.sum())
    if total_w == 0:
        return float("nan")
    mean = float((w * x).sum() / total_w)
    var = float((w**2 * (x - mean) ** 2).sum()) / total_w**2
    return math.sqrt(max(var, 0.0))


def analytical_range(
    estimate: float, stderr: float, slack: float
) -> tuple[float, float]:
    """An ABM-style variation range: ``estimate ± (2 + ε)·se``.

    The simulated range spans the min/max of the trials (≈ ±2–3 se for
    ~100 trials) plus ``ε·se`` slack on each side; this closed form
    reproduces that envelope without any trials.
    """
    spread = (2.0 + slack) * stderr
    return estimate - spread, estimate + spread
