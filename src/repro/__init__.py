"""iOLAP reproduction: incremental OLAP with uncertainty-propagating deltas.

Public entry points:

* :mod:`repro.relational` — the bag-relational substrate (schemas,
  relations, expressions, logical plans, batch evaluator).
* :mod:`repro.sql` — SQL front-end for the supported SPJA+nesting subset.
* :mod:`repro.core` — the iOLAP online engine (mini-batch controller,
  uncertainty propagation, delta updates, lineage/lazy evaluation).
* :mod:`repro.baselines` — batch, classical-delta (OLA), and HDA
  (DBToaster-style higher-order delta) comparators.
* :mod:`repro.workloads` — synthetic TPC-H-like and Conviva-like
  workloads used by the benchmark harness.
"""

__version__ = "1.0.0"
