"""``repro.obs`` — structured tracing and metrics for the online engine.

The subsystem has four pieces, all zero-cost when disabled (the engine's
default is the inert :data:`NULL_OBS`):

* :class:`Tracer` — nested spans over the whole execution path
  (run → batch → wave → execution unit → operator ``process`` →
  bootstrap / range-check / recovery-replay), collected deterministically
  under the parallel executor via per-unit scratch buffers;
* the event bus and sinks — JSON-lines event log (``--trace-out``),
  in-memory sink for tests, and a Chrome trace-event exporter whose
  output loads in Perfetto (``iolap trace --format chrome``);
* :class:`MetricsRegistry` — counters/gauges/histograms for the paper's
  signals (|U_i| ND-set sizes, variation-range widths, per-entry state
  bytes, recovery depth, per-operator row throughput), sampled into the
  trace after every batch;
* :class:`ConvergenceReporter` and ``iolap report`` — the live
  estimate ± CI view and the post-hoc trace summary.

See DESIGN.md §9 for the span taxonomy and the event schema.
"""

from repro.obs.chrome import to_chrome, write_chrome
from repro.obs.convergence import ConvergenceReporter
from repro.obs.costmodel import CostModel
from repro.obs.events import (
    EVENT_KINDS,
    EVENT_SCHEMA_VERSION,
    read_events,
    validate_event,
    validate_events,
)
from repro.obs.registry import (
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    metric_key,
)
from repro.obs.export import (
    MetricsHTTPServer,
    TextfileExporter,
    TopView,
    parse_listen,
    parse_prometheus_text,
    prometheus_text,
)
from repro.obs.profile import (
    ContinuousProfiler,
    ProfileStore,
    QueryProfile,
    plan_signature,
)
from repro.obs.report import (
    REPORT_SCHEMA_VERSION,
    TraceSummary,
    render_report,
    validate_report,
)
from repro.obs.session import NULL_OBS, MetricsObservability, Observability
from repro.obs.sinks import EventBus, EventSink, JsonlSink, MemorySink
from repro.obs.tracer import NULL_TRACER, NullTracer, Span, TraceBuffer, Tracer

__all__ = [
    "EVENT_KINDS",
    "EVENT_SCHEMA_VERSION",
    "NULL_OBS",
    "NULL_REGISTRY",
    "NULL_TRACER",
    "REPORT_SCHEMA_VERSION",
    "ContinuousProfiler",
    "ConvergenceReporter",
    "CostModel",
    "Counter",
    "EventBus",
    "EventSink",
    "Gauge",
    "Histogram",
    "JsonlSink",
    "MemorySink",
    "MetricsHTTPServer",
    "MetricsObservability",
    "MetricsRegistry",
    "NullRegistry",
    "NullTracer",
    "Observability",
    "ProfileStore",
    "QueryProfile",
    "Span",
    "TextfileExporter",
    "TopView",
    "TraceBuffer",
    "TraceSummary",
    "Tracer",
    "metric_key",
    "parse_listen",
    "parse_prometheus_text",
    "plan_signature",
    "prometheus_text",
    "read_events",
    "render_report",
    "to_chrome",
    "validate_event",
    "validate_events",
    "validate_report",
    "write_chrome",
]
