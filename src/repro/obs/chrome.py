"""Chrome trace-event export (``iolap trace --format chrome``).

Converts an event-log trace (the JSONL schema of :mod:`repro.obs.events`)
into the Chrome trace-event JSON format, loadable in Perfetto
(https://ui.perfetto.dev) or ``chrome://tracing``:

* each logical track (``main``, ``unit:<label>``) becomes a named thread
  of one process, so parallel execution units render side by side;
* spans become complete events (``ph: "X"``); Perfetto reconstructs the
  run → batch → wave / unit → operator nesting from per-track time
  containment, which the tracer guarantees by construction;
* counter samples become counter events (``ph: "C"``) and render as the
  Fig. 7–10 style per-batch trajectories (state bytes, |U_i|, …);
* warnings and convergence records become instant events (``ph: "i"``).
"""

from __future__ import annotations

import json
from typing import IO, Iterable

#: Process id used for all events (single-process engine).
_PID = 1


def to_chrome(events: Iterable[dict]) -> dict:
    """Build a Chrome trace-event document from schema-valid events."""
    trace_events: list[dict] = []
    tids: dict[str, int] = {}

    def tid_for(track: str) -> int:
        tid = tids.get(track)
        if tid is None:
            # Track 0 is the controller; units get stable ids by first use.
            tid = tids[track] = len(tids)
            trace_events.append(
                {
                    "ph": "M",
                    "name": "thread_name",
                    "pid": _PID,
                    "tid": tid,
                    "args": {"name": track},
                }
            )
        return tid

    for event in events:
        kind = event["kind"]
        tid = tid_for(event["track"])
        ts_us = event["ts"] * 1e6
        args = dict(event.get("args") or {})
        if "batch" in event:
            args["batch"] = event["batch"]
        base = {
            "name": event["name"],
            "cat": event["cat"],
            "pid": _PID,
            "tid": tid,
            "ts": ts_us,
        }
        if kind == "span":
            # Retried execution units emit one span per attempt (tagged
            # `attempt`); suffix the later attempts' names so the slices
            # are visually distinct in Perfetto instead of reading as
            # duplicate spans of one unit.
            name = base["name"]
            attempt = args.get("attempt")
            if isinstance(attempt, int) and attempt > 1:
                name = f"{name} (attempt {attempt})"
            trace_events.append(
                {**base, "name": name, "ph": "X",
                 "dur": event["dur"] * 1e6, "args": args}
            )
        elif kind == "counter":
            trace_events.append(
                {**base, "ph": "C", "args": {"value": event["value"]}}
            )
        else:  # instant / warning / convergence
            trace_events.append({**base, "ph": "i", "s": "t", "args": args})

    return {"traceEvents": trace_events, "displayTimeUnit": "ms"}


def write_chrome(events: Iterable[dict], fh: IO[str]) -> int:
    """Write the Chrome trace JSON; returns the trace-event count."""
    document = to_chrome(events)
    json.dump(document, fh, allow_nan=False)
    return len(document["traceEvents"])
