"""The observability session: one tracer + one metrics registry + sinks.

An :class:`Observability` object is handed to the engine
(``OnlineQueryEngine(..., obs=...)``) and threaded through the runtime
context, so every layer — controller, executors, operators, state
stores, the contract verifier — reports into the same timeline. The
default is :data:`NULL_OBS`, whose tracer and registry are the inert
null implementations: instrumentation then costs a guard or a no-op
method call and allocates nothing.
"""

from __future__ import annotations

import time
from typing import Callable, Iterable

from repro.obs.registry import NULL_REGISTRY, MetricsRegistry, NullRegistry
from repro.obs.sinks import EventBus, EventSink, JsonlSink, MemorySink
from repro.obs.tracer import NULL_TRACER, NullTracer, Tracer


class Observability:
    """Bundles the tracing and metrics state of one engine execution."""

    enabled = True

    def __init__(
        self,
        sinks: Iterable[EventSink] = (),
        clock: Callable[[], float] = time.perf_counter,
    ):
        self.bus = EventBus(sinks)
        self.tracer: Tracer = Tracer(self.bus, clock)
        self.metrics: MetricsRegistry = MetricsRegistry()

    @classmethod
    def in_memory(cls) -> tuple["Observability", MemorySink]:
        """An observability session buffering events in memory (tests)."""
        sink = MemorySink()
        return cls(sinks=[sink]), sink

    @classmethod
    def to_jsonl(cls, path: str) -> "Observability":
        """An observability session streaming events to a JSONL file."""
        return cls(sinks=[JsonlSink.open(path)])

    def emit_metrics(self, batch: int | None = None) -> None:
        """Sample every registry series into counter events (one batch's
        worth of the Fig. 7–10 trajectories)."""
        tracer = self.tracer
        for key, value in self.metrics.scalar_snapshot().items():
            tracer.counter(key, value, batch=batch)

    def flush(self) -> None:
        self.tracer.flush()

    def close(self) -> None:
        self.tracer.flush()
        self.bus.close()

    def __enter__(self) -> "Observability":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


class MetricsObservability:
    """A metrics-only session: live registry, inert tracer, no events.

    The continuous profiler (``OnlineConfig(profile=True)``) needs the
    registry's signals (``nd.rows``, per-op row counters, state gauges)
    even when no trace sink is attached. This session makes exactly that
    slice live: ``enabled`` is True so operators record their gauges,
    but the tracer stays :data:`NULL_TRACER` (no span allocation) and
    ``emit_metrics`` is a no-op (no per-batch registry -> event
    sampling), keeping the profiling overhead to the registry writes
    alone.
    """

    enabled = True

    def __init__(self) -> None:
        self.bus = EventBus()
        self.tracer: NullTracer = NULL_TRACER
        self.metrics: MetricsRegistry = MetricsRegistry()

    def emit_metrics(self, batch: int | None = None) -> None:
        pass

    def flush(self) -> None:
        pass

    def close(self) -> None:
        pass


class _NullObservability:
    """Disabled observability: the zero-cost default."""

    enabled = False

    def __init__(self) -> None:
        self.bus = EventBus()
        self.tracer: NullTracer = NULL_TRACER
        self.metrics: NullRegistry = NULL_REGISTRY

    def emit_metrics(self, batch: int | None = None) -> None:
        pass

    def flush(self) -> None:
        pass

    def close(self) -> None:
        pass


NULL_OBS = _NullObservability()
