"""Predictive cost and convergence model fitted from rolling profiles.

Two trajectories from the paper's evaluation are modelled:

* **per-batch cost** — ``seconds ≈ f(rows, |U_i|, state bytes)``, fitted
  by recency-weighted ridge regression over the profile's recent batch
  samples, blended with (and clamped around) the EWMA of recent batch
  times so a sparse or collinear sample set degrades to a smoothed
  moving average instead of extrapolating wildly;
* **CI width** — the bootstrap's ``rsd ≈ c / sqrt(seen_rows)`` with the
  constant ``c`` measured (EWMA) from the run's actual worst relative
  stdev, which inverts into *batches until a target accuracy* — the SLA
  primitive a bounded-error/bounded-time contract needs.

Calibration is tracked continuously: every prediction issued before a
batch is scored against that batch's actual wall seconds, and the run's
mean absolute error / MAPE land in ``RunMetrics.cost_calibration``.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.profile import QueryProfile

#: Prediction clamp around the EWMA batch time: regression extrapolation
#: may not stray beyond this factor in either direction.
_CLAMP = 2.0

#: Ridge regularization (features are normalized before the solve).
_RIDGE = 1e-3


class CostModel:
    """Fits and serves per-batch cost + CI-width predictions."""

    def __init__(self, profile: "QueryProfile", warmup_batches: int = 5):
        self.profile = profile
        self.warmup_batches = max(1, int(warmup_batches))
        #: Regression coefficients over [1, rows, nd_rows, state_bytes]
        #: in normalized feature space, or None (EWMA fallback).
        self._coef: np.ndarray | None = None
        self._feature_scale: np.ndarray | None = None
        #: Calibration accumulators (prediction vs actual).
        self.predictions = 0
        self.abs_error_sum = 0.0
        self.rel_error_sum = 0.0
        self.refit()

    # -- fitting -----------------------------------------------------------------

    def refit(self) -> None:
        """Refit the regression from the profile's recent samples.

        Cheap (≤256×4 lstsq); the profiler calls it once per batch.
        """
        samples = self.profile.samples
        if len(samples) < max(4, self.warmup_batches):
            self._coef = None
            return
        data = np.asarray(samples, dtype=np.float64)
        x = data[:, :3]  # rows, nd_rows, state_bytes
        y = data[:, 3]
        # Normalize features so the ridge penalty is scale-free.
        scale = np.maximum(np.abs(x).max(axis=0), 1.0)
        xn = x / scale
        design = np.column_stack([np.ones(len(xn)), xn])
        # Recency weighting: newest sample weighs ~3x the oldest.
        w = np.linspace(1.0, 3.0, len(design))
        wd = design * w[:, None]
        gram = wd.T @ design + _RIDGE * np.eye(design.shape[1])
        try:
            coef = np.linalg.solve(gram, wd.T @ y)
        except np.linalg.LinAlgError:
            self._coef = None
            return
        self._coef = coef
        self._feature_scale = scale

    # -- prediction --------------------------------------------------------------

    def predict_batch_seconds(
        self,
        batch_rows: int,
        nd_rows: float | None = None,
        state_bytes: float | None = None,
    ) -> float:
        """Predicted wall seconds of the next batch; 0.0 pre-warm-up.

        Missing features default to the most recent observed levels
        (last sample), matching the "next batch looks like the current
        state of the run" assumption.
        """
        prof = self.profile
        samples = prof.samples
        if len(samples) < self.warmup_batches:
            return 0.0
        ewma = prof.batch_seconds.get()
        if ewma <= 0.0:
            return 0.0
        if self._coef is None or self._feature_scale is None:
            return ewma
        last = samples[-1]
        feats = np.array(
            [
                float(batch_rows),
                float(nd_rows if nd_rows is not None else last[1]),
                float(state_bytes if state_bytes is not None else last[2]),
            ]
        )
        xn = feats / self._feature_scale
        pred = float(self._coef[0] + self._coef[1:] @ xn)
        # Regression handles feature drift (growing ND sets, state);
        # the clamp keeps a degenerate fit within sanity of the EWMA.
        return float(min(max(pred, ewma / _CLAMP), ewma * _CLAMP))

    def predict_batches_to_ci(
        self, target_rsd: float, batch_rows: int, seen_rows: int
    ) -> int | None:
        """Batches still needed until the worst rsd falls below target.

        Returns 0 when the target is already met, None when the model
        has no measured CI constant yet (deterministic queries, or the
        first batches of a cold run). Inverts ``rsd = c/√n`` for the row
        count the target needs, then converts to batches.
        """
        c = self.profile.ci_c.get()
        if c <= 0.0 or target_rsd <= 0.0:
            return None
        if batch_rows <= 0:
            return None
        current_rsd = c / math.sqrt(seen_rows) if seen_rows > 0 else math.inf
        if current_rsd <= target_rsd:
            return 0
        rows_needed = (c / target_rsd) ** 2 - seen_rows
        return max(1, int(math.ceil(rows_needed / batch_rows)))

    # -- calibration -------------------------------------------------------------

    def score(self, predicted: float, actual: float) -> None:
        """Fold one issued prediction's error into the calibration."""
        self.predictions += 1
        err = abs(predicted - actual)
        self.abs_error_sum += err
        if actual > 0.0:
            self.rel_error_sum += err / actual

    def calibration(self) -> dict:
        """Calibration summary (the ``RunMetrics.cost_calibration`` dict)."""
        if not self.predictions:
            return {
                "predictions": 0,
                "mae_seconds": 0.0,
                "mape": 0.0,
                "warmup_batches": self.warmup_batches,
            }
        return {
            "predictions": self.predictions,
            "mae_seconds": self.abs_error_sum / self.predictions,
            "mape": self.rel_error_sum / self.predictions,
            "warmup_batches": self.warmup_batches,
        }
