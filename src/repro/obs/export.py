"""Live telemetry export: Prometheus text format, HTTP endpoint, textfile
exporter, and the ``iolap top`` live view.

The exporter publishes the metrics registry's signals (|U_i| ``nd.rows``,
variation-range widths, state bytes by entry/tier, recovery depth,
per-operator self time, cost-model predictions vs actuals) in the
Prometheus text exposition format:

* :func:`prometheus_text` renders a registry snapshot (dots in metric
  names become underscores under an ``iolap_`` prefix; counters get the
  conventional ``_total`` suffix; histogram summaries expand to
  ``_count``/``_sum``/``_min``/``_max`` series);
* :class:`MetricsHTTPServer` serves ``/metrics`` from a stdlib
  ``http.server`` daemon thread (``iolap metrics --listen :9110``) —
  scrapes read live gauge values, no engine coordination needed (gauges
  are 8-byte stores; a scrape races a batch only into a slightly stale
  value, never a torn one);
* :class:`TextfileExporter` atomically rewrites a ``.prom`` file per
  batch for scrape-less CI (the node-exporter textfile collector idiom);
* :func:`parse_prometheus_text` is the inverse used by tests and the CI
  smoke job to validate published artifacts;
* :class:`TopView` renders the ``iolap top`` per-operator hot-spot table
  with the cost model's batches-to-convergence estimate.
"""

from __future__ import annotations

import os
import re
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import TYPE_CHECKING

from repro.obs.registry import Counter, Gauge, Histogram

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.profile import ContinuousProfiler
    from repro.obs.registry import MetricsRegistry

#: Content type of the Prometheus text exposition format.
PROM_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_NAME_SANITIZE = re.compile(r"[^a-zA-Z0-9_:]")


def prom_name(name: str) -> str:
    """Registry metric name -> Prometheus metric name (``iolap_`` prefix)."""
    return "iolap_" + _NAME_SANITIZE.sub("_", name.replace(".", "_"))


def _escape_label(value: object) -> str:
    return (
        str(value)
        .replace("\\", r"\\")
        .replace('"', r'\"')
        .replace("\n", r"\n")
    )


def _label_text(labels: dict[str, object]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{k}="{_escape_label(labels[k])}"' for k in sorted(labels)
    )
    return "{" + inner + "}"


def prometheus_text(registry: "MetricsRegistry") -> str:
    """Render every registry series in Prometheus text format."""
    families: dict[str, tuple[str, list[str]]] = {}

    def emit(family: str, kind: str, labels: dict[str, object],
             value: float) -> None:
        entry = families.get(family)
        if entry is None:
            entry = families[family] = (kind, [])
        entry[1].append(f"{family}{_label_text(labels)} {_format(value)}")

    for _key, name, labels, inst in registry.series():
        base = prom_name(name)
        if isinstance(inst, Counter):
            emit(base + "_total", "counter", labels, inst.value)
        elif isinstance(inst, Histogram):
            emit(base + "_count", "gauge", labels, float(inst.count))
            emit(base + "_sum", "gauge", labels, inst.sum)
            if inst.count:
                emit(base + "_min", "gauge", labels, inst.min)
                emit(base + "_max", "gauge", labels, inst.max)
        elif isinstance(inst, Gauge):
            emit(base, "gauge", labels, inst.value)
    lines: list[str] = []
    for family in sorted(families):
        kind, samples = families[family]
        lines.append(f"# TYPE {family} {kind}")
        lines.extend(samples)
    return "\n".join(lines) + ("\n" if lines else "")


def _format(value: float) -> str:
    if value != value:
        return "NaN"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


_SAMPLE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?P<labels>\{[^}]*\})?\s+(?P<value>\S+)$"
)


def parse_prometheus_text(text: str) -> dict[str, float]:
    """Parse exposition text back into ``{name{labels}: value}``.

    The validation inverse of :func:`prometheus_text` (tests and the CI
    smoke job); raises ``ValueError`` on any malformed non-comment line.
    """
    out: dict[str, float] = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line or line.startswith("#"):
            continue
        match = _SAMPLE.match(line)
        if match is None:
            raise ValueError(f"line {lineno}: malformed sample {line!r}")
        key = match.group("name") + (match.group("labels") or "")
        out[key] = float(match.group("value"))
    return out


class TextfileExporter:
    """Atomic ``.prom`` file writer (node-exporter textfile idiom)."""

    def __init__(self, path: str, registry: "MetricsRegistry"):
        self.path = path
        self.registry = registry
        self.writes = 0

    def write(self) -> None:
        tmp = f"{self.path}.tmp.{os.getpid()}"
        with open(tmp, "w") as fh:
            fh.write(prometheus_text(self.registry))
        os.replace(tmp, self.path)
        self.writes += 1


class _MetricsHandler(BaseHTTPRequestHandler):
    server: "_MetricsServer"  # type: ignore[assignment]

    def do_GET(self) -> None:  # noqa: N802 — http.server API
        if self.path.split("?", 1)[0] not in ("/", "/metrics"):
            self.send_error(404, "try /metrics")
            return
        body = prometheus_text(self.server.registry).encode("utf-8")
        self.send_response(200)
        self.send_header("Content-Type", PROM_CONTENT_TYPE)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, format: str, *args: object) -> None:
        pass  # scrapes must not pollute the engine's stderr


class _MetricsServer(ThreadingHTTPServer):
    daemon_threads = True
    registry: "MetricsRegistry"


class MetricsHTTPServer:
    """Serves ``/metrics`` for one registry from a daemon thread."""

    def __init__(self, registry: "MetricsRegistry", host: str = "127.0.0.1",
                 port: int = 0):
        self.registry = registry
        self._server = _MetricsServer((host, port), _MetricsHandler)
        self._server.registry = registry
        self._thread: threading.Thread | None = None

    @property
    def address(self) -> tuple[str, int]:
        return self._server.server_address[:2]  # type: ignore[return-value]

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}/metrics"

    def start(self) -> "MetricsHTTPServer":
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            name="iolap-metrics-http",
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=2.0)
            self._thread = None


def parse_listen(spec: str) -> tuple[str, int]:
    """``HOST:PORT`` / ``:PORT`` -> (host, port); host defaults local."""
    host, sep, port = spec.rpartition(":")
    if not sep or not port.isdigit():
        raise ValueError(
            f"bad --listen {spec!r}: expected HOST:PORT or :PORT"
        )
    return (host or "127.0.0.1", int(port))


ANSI_CLEAR = "\x1b[2J\x1b[H"


class TopView:
    """The ``iolap top`` frame renderer: per-operator hot spots, live.

    Pure formatting over the profiler's rolling state — one frame per
    batch, rendered either with an ANSI clear (interactive) or as
    newline-separated frames (``--plain`` / non-tty / tests).
    """

    def __init__(self, target_rsd: float = 0.05, top: int = 12):
        self.target_rsd = target_rsd
        self.top = top
        self.frames = 0

    def frame(
        self,
        profiler: "ContinuousProfiler",
        batch_no: int,
        num_batches: int,
        rsd: float,
        batch_rows: int,
        seen_rows: int,
        wall_seconds: float,
        rollup_groups: int = 0,
        nd_groups: int = 0,
    ) -> str:
        self.frames += 1
        prof = profiler.profile
        predicted = profiler.model.predict_batch_seconds(batch_rows)
        to_target = profiler.predict_batches_to_ci(
            self.target_rsd, batch_rows, seen_rows
        )
        cal = profiler.calibration()
        rsd_text = f"{rsd:.4f}" if rsd == rsd else "n/a"
        eta = (
            "met" if to_target == 0
            else f"~{to_target} batch(es)" if to_target is not None
            else "n/a"
        )
        lines = [
            f"iolap top — batch {batch_no}/{num_batches}"
            f"  wall {wall_seconds * 1000:8.1f} ms"
            f"  rsd {rsd_text}",
            f"cost model: next batch ~{predicted * 1000:.1f} ms"
            f"  (mape {cal['mape'] * 100:.1f}% over {cal['predictions']}"
            f" scored)  to rsd<{self.target_rsd:g}: {eta}",
        ]
        total_groups = rollup_groups + nd_groups
        if rollup_groups:
            lines.append(
                f"rollup tier: {rollup_groups} resolved / {nd_groups} ND "
                f"group(s)  hit rate {rollup_groups / total_groups:5.1%}"
            )
        lines += [
            "",
            f"{'operator':<40} {'self ms':>9} {'rows in':>9} "
            f"{'nd rows':>9} {'state KiB':>10}",
        ]
        for op in prof.hot_operators(self.top):
            lines.append(
                f"{op.label[:40]:<40} "
                f"{op.self_seconds.get() * 1000:9.2f} "
                f"{op.rows_in.get():9.0f} "
                f"{op.nd_rows.get():9.0f} "
                f"{op.state_bytes.get() / 1024:10.1f}"
            )
        return "\n".join(lines)
