"""The metrics registry: counters, gauges and histograms with labels.

Captures the paper-specific signals the per-batch ``BatchMetrics``
counters cannot express: |U_i| non-deterministic set sizes per predicate,
variation-range widths, per-entry state-store footprints (cached ND rows
vs. resolved/pruned state), recovery replay depth, and per-operator row
throughput. The engine snapshots the registry after every batch into
``counter`` trace events, so the series land in the same timeline as the
spans.

Concurrency model: instruments are created through a lock, but samples
are written lock-free — every labelled instrument has a single writing
execution unit per batch (operator labels are unique to one unit; the
engine's own series are written by the controller thread), the same
single-writer discipline the state stores enforce. Snapshots are taken
between batches on the controller thread.

The default registry is :data:`NULL_REGISTRY`: disabled, returning one
shared inert instrument, so instrumented code paths cost a method call
and nothing else when observability is off.
"""

from __future__ import annotations

import math
import threading


def metric_key(name: str, labels: dict[str, object]) -> str:
    """Canonical series key: ``name{k1=v1,k2=v2}`` with sorted labels."""
    if not labels:
        return name
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{inner}}}"


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount


class Gauge:
    """A point-in-time level (set each batch, e.g. |U_i| or state bytes)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount


class Histogram:
    """A running summary (count/sum/min/max) of observed values.

    Summaries rather than reservoirs: order-independent, so merged or
    parallel runs report identical values regardless of timing.
    """

    __slots__ = ("count", "sum", "min", "max")

    def __init__(self) -> None:
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: float) -> None:
        value = float(value)
        if not math.isfinite(value):
            return
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else math.nan

    def summary(self) -> dict[str, float]:
        if not self.count:
            return {"count": 0, "sum": 0.0}
        return {
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
        }


class MetricsRegistry:
    """Get-or-create instrument registry keyed by name + labels."""

    enabled = True

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._instruments: dict[str, object] = {}
        #: Series key -> (metric name, labels); the structured view the
        #: exporters need (the key string alone cannot be split back
        #: safely once label values contain ``,`` or ``=``).
        self._meta: dict[str, tuple[str, dict[str, object]]] = {}

    def _get(self, cls: type, name: str, labels: dict[str, object]) -> object:
        key = metric_key(name, labels)
        inst = self._instruments.get(key)
        if inst is None:
            with self._lock:
                inst = self._instruments.get(key)
                if inst is None:
                    inst = self._instruments[key] = cls()
                    self._meta[key] = (name, dict(labels))
        if not isinstance(inst, cls):
            raise TypeError(
                f"metric {key!r} already registered as {type(inst).__name__}"
            )
        return inst

    def counter(self, name: str, **labels: object) -> Counter:
        return self._get(Counter, name, labels)  # type: ignore[return-value]

    def gauge(self, name: str, **labels: object) -> Gauge:
        return self._get(Gauge, name, labels)  # type: ignore[return-value]

    def histogram(self, name: str, **labels: object) -> Histogram:
        return self._get(Histogram, name, labels)  # type: ignore[return-value]

    def series(self) -> list[tuple[str, str, dict[str, object], object]]:
        """All series as ``(key, name, labels, instrument)``, key-sorted.

        The structured feed of the Prometheus exporter and the profiler;
        instruments are live objects — read their current values, do not
        mutate them.
        """
        with self._lock:
            items = sorted(self._instruments.items())
            meta = dict(self._meta)
        out = []
        for key, inst in items:
            name, labels = meta.get(key, (key, {}))
            out.append((key, name, labels, inst))
        return out

    def snapshot(self) -> dict[str, object]:
        """All series, sorted by key; histograms as summary dicts."""
        out: dict[str, object] = {}
        with self._lock:
            items = sorted(self._instruments.items())
        for key, inst in items:
            if isinstance(inst, Histogram):
                out[key] = inst.summary()
            else:
                out[key] = inst.value  # type: ignore[union-attr]
        return out

    def scalar_snapshot(self) -> dict[str, float]:
        """Flat numeric view (histograms flattened to .count/.sum/.min/.max)
        — the per-batch counter-event feed."""
        out: dict[str, float] = {}
        with self._lock:
            items = sorted(self._instruments.items())
        for key, inst in items:
            if isinstance(inst, Histogram):
                if inst.count:
                    out[f"{key}.count"] = float(inst.count)
                    out[f"{key}.sum"] = inst.sum
                    out[f"{key}.min"] = inst.min
                    out[f"{key}.max"] = inst.max
            else:
                out[key] = float(inst.value)  # type: ignore[union-attr]
        return out

    def __len__(self) -> int:
        return len(self._instruments)


class _NullInstrument:
    """Shared inert counter/gauge/histogram."""

    __slots__ = ()
    value = 0.0
    count = 0
    sum = 0.0

    def inc(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass


_NULL_INSTRUMENT = _NullInstrument()


class NullRegistry:
    """The default registry: disabled and allocation-free."""

    enabled = False

    def counter(self, name: str, **labels: object) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def gauge(self, name: str, **labels: object) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def histogram(self, name: str, **labels: object) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def series(self) -> list[tuple[str, str, dict[str, object], object]]:
        return []

    def snapshot(self) -> dict[str, object]:
        return {}

    def scalar_snapshot(self) -> dict[str, float]:
        return {}

    def __len__(self) -> int:
        return 0


NULL_REGISTRY = NullRegistry()
