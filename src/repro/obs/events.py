"""The structured event schema of the tracing subsystem.

Every record the tracer emits — through any sink — is one flat JSON
object. The schema is deliberately small and *pinned*: the field set per
event kind is frozen by a golden test, and :data:`EVENT_SCHEMA_VERSION`
must be bumped whenever it changes, so downstream consumers (the
``iolap report`` summarizer, the Chrome exporter, the CI smoke job) can
rely on artifacts from older runs staying parseable.

Common fields (all kinds)
    ``v``      schema version (int, == :data:`EVENT_SCHEMA_VERSION`)
    ``kind``   one of :data:`EVENT_KINDS`
    ``name``   event name (span name, metric key, warning code)
    ``cat``    category (span taxonomy bucket: ``run``/``exec``/``bootstrap``/
               ``integrity``/``recovery``/``metric``/``warning``/``convergence``)
    ``track``  logical track the event belongs to (``main`` or ``unit:<label>``);
               the Chrome exporter maps tracks to threads
    ``ts``     seconds since the tracer's epoch (float, >= 0)

Kind-specific fields
    ``span``         ``dur`` (float seconds, >= 0)
    ``counter``      ``value`` (number)
    ``instant`` / ``warning`` / ``convergence``  no extra required fields

Optional fields (any kind)
    ``batch``  mini-batch number (int)
    ``args``   free-form JSON object with event details
"""

from __future__ import annotations

import json
import math
from typing import Any, Iterable, Iterator

#: Bump whenever a required field is added/removed/retyped (golden-tested).
EVENT_SCHEMA_VERSION = 1

#: The closed set of event kinds.
EVENT_KINDS = frozenset({"span", "instant", "counter", "warning", "convergence"})

#: Required fields shared by every kind, with their accepted types.
COMMON_FIELDS: dict[str, tuple[type, ...]] = {
    "v": (int,),
    "kind": (str,),
    "name": (str,),
    "cat": (str,),
    "track": (str,),
    "ts": (int, float),
}

#: Extra required fields per kind.
KIND_FIELDS: dict[str, dict[str, tuple[type, ...]]] = {
    "span": {"dur": (int, float)},
    "instant": {},
    "counter": {"value": (int, float)},
    "warning": {},
    "convergence": {},
}

#: Optional fields any kind may carry.
OPTIONAL_FIELDS: dict[str, tuple[type, ...]] = {
    "batch": (int,),
    "args": (dict,),
}


def validate_event(record: object) -> None:
    """Check one event record against the schema; raise ``ValueError``.

    Unknown top-level fields are rejected so the schema stays pinned:
    adding a field requires updating this module (and the golden test)
    deliberately.
    """
    if not isinstance(record, dict):
        raise ValueError(f"event must be a JSON object, got {type(record).__name__}")
    for name, types in COMMON_FIELDS.items():
        _require(record, name, types)
    if record["v"] != EVENT_SCHEMA_VERSION:
        raise ValueError(
            f"event schema version {record['v']!r} != {EVENT_SCHEMA_VERSION}"
        )
    kind = record["kind"]
    if kind not in EVENT_KINDS:
        raise ValueError(f"unknown event kind {kind!r}")
    specific = KIND_FIELDS[kind]
    for name, types in specific.items():
        _require(record, name, types)
    allowed = set(COMMON_FIELDS) | set(specific) | set(OPTIONAL_FIELDS)
    unknown = set(record) - allowed
    if unknown:
        raise ValueError(
            f"{kind} event has unknown field(s) {sorted(unknown)}; the event "
            "schema is pinned — extend repro.obs.events (and bump "
            "EVENT_SCHEMA_VERSION) to add fields"
        )
    for name, types in OPTIONAL_FIELDS.items():
        if name in record and not isinstance(record[name], types):
            raise ValueError(
                f"event field {name!r} has type {type(record[name]).__name__}"
            )
    if record["ts"] < 0:
        raise ValueError("event ts must be >= 0")
    if kind == "span" and record["dur"] < 0:
        raise ValueError("span dur must be >= 0")
    if kind == "counter" and not math.isfinite(record["value"]):
        raise ValueError("counter value must be finite")


def _require(record: dict, name: str, types: tuple[type, ...]) -> None:
    if name not in record:
        raise ValueError(f"event is missing required field {name!r}")
    value = record[name]
    # bool is an int subclass; never a valid numeric field value here.
    if isinstance(value, bool) or not isinstance(value, types):
        raise ValueError(
            f"event field {name!r} has type {type(value).__name__}, "
            f"expected {'/'.join(t.__name__ for t in types)}"
        )


def jsonable(value: Any) -> Any:
    """Coerce an event arg to something ``json.dump`` accepts losslessly.

    Non-finite floats become ``None`` (strict JSON has no NaN/Inf);
    unknown objects fall back to ``repr``.
    """
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        return value if math.isfinite(value) else None
    if isinstance(value, dict):
        return {str(k): jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [jsonable(v) for v in value]
    # numpy scalars expose item(); anything else degrades to repr.
    item = getattr(value, "item", None)
    if callable(item):
        try:
            return jsonable(item())
        except (TypeError, ValueError):
            pass
    return repr(value)


def read_events(path: str, validate: bool = True) -> Iterator[dict]:
    """Stream event records from a JSON-lines trace file."""
    with open(path) as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path}:{lineno}: not valid JSON: {exc}") from None
            if validate:
                try:
                    validate_event(record)
                except ValueError as exc:
                    raise ValueError(f"{path}:{lineno}: {exc}") from None
            yield record


def validate_events(events: Iterable[dict]) -> int:
    """Validate every record; returns the count (for smoke checks)."""
    n = 0
    for record in events:
        validate_event(record)
        n += 1
    return n
