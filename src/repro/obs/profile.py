"""Continuous profiling: rolling per-operator profiles of an online run.

The profiler turns the engine's per-batch raw counters into *rolling
EWMA profiles* keyed by query shape — the per-operator self-times,
rows-in/out throughput, state growth, and ND-set-size deltas the cost
model (:mod:`repro.obs.costmodel`) fits its per-batch cost and CI-width
trajectories from. Profiles persist to a ``profiles.json`` artifact and
reload across runs, so a warmed profile predicts from the first batch of
the next execution of the same plan.

Design constraints (the PR 3/4 observability discipline):

* **zero-cost when off** — nothing in this module is imported unless
  ``OnlineConfig(profile=True)``; the controller's hot loop pays one
  ``is None`` test per batch;
* **bit-identical when on** — the profiler only *reads* engine state
  (``BatchMetrics``, the metrics registry, ``PartialResult`` estimates)
  on the controller thread between batches; it never touches operator
  state, RNG draws, or the batch schedule;
* **deterministic keying** — profiles are keyed by
  :func:`plan_signature`, a content hash of ``PlanNode.describe()``
  (operator labels embed object ids and are unstable across processes;
  the describe rendering is not).

An optional sampling stack profiler (:class:`StackSampler`, armed by
``OnlineConfig(profile_stack=True)``) runs in a daemon thread reading
``sys._current_frames()`` — purely observational, so the determinism
guarantee is unaffected.
"""

from __future__ import annotations

import hashlib
import json
import os
import sys
import threading
import time
from typing import TYPE_CHECKING, Iterable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.blocks import RuntimeContext
    from repro.core.result import PartialResult
    from repro.metrics.stats import BatchMetrics
    from repro.relational.algebra import PlanNode

#: Pinned on-disk schema tag of the ``profiles.json`` artifact.
PROFILES_SCHEMA = "iolap-profiles-v1"

#: Default smoothing factor: ~the last 5 batches dominate.
EWMA_ALPHA = 0.3

#: Per-query batch samples retained for the cost-model fit.
MAX_SAMPLES = 256


def plan_signature(plan: "PlanNode") -> str:
    """Stable content hash of a plan shape (profile key across runs)."""
    text = plan.describe()
    return hashlib.sha256(text.encode("utf-8")).hexdigest()[:16]


class Ewma:
    """Exponentially weighted moving average with a sample count."""

    __slots__ = ("alpha", "value", "count")

    def __init__(self, alpha: float = EWMA_ALPHA, value: float | None = None,
                 count: int = 0):
        self.alpha = alpha
        self.value = value
        self.count = count

    def update(self, x: float) -> float:
        x = float(x)
        if self.value is None:
            self.value = x
        else:
            self.value = self.alpha * x + (1.0 - self.alpha) * self.value
        self.count += 1
        return self.value

    def get(self, default: float = 0.0) -> float:
        return default if self.value is None else self.value

    def to_dict(self) -> dict:
        return {"value": self.value, "count": self.count}

    @classmethod
    def from_dict(cls, data: dict, alpha: float = EWMA_ALPHA) -> "Ewma":
        return cls(alpha=alpha, value=data.get("value"),
                   count=int(data.get("count", 0)))


class OperatorProfile:
    """Rolling EWMA profile of one operator / execution-unit label."""

    __slots__ = (
        "label", "self_seconds", "rows_in", "rows_out",
        "state_bytes", "state_delta", "nd_rows", "nd_delta", "batches",
    )

    def __init__(self, label: str):
        self.label = label
        #: Per-batch self time (the op_seconds share of this label).
        self.self_seconds = Ewma()
        #: Rows in / rows out per batch (tracing or metrics session only).
        self.rows_in = Ewma()
        self.rows_out = Ewma()
        #: Absolute state footprint and its batch-over-batch growth.
        self.state_bytes = Ewma()
        self.state_delta = Ewma()
        #: |U_i| non-deterministic set size and its batch-over-batch delta.
        self.nd_rows = Ewma()
        self.nd_delta = Ewma()
        self.batches = 0

    def to_dict(self) -> dict:
        return {
            "label": self.label,
            "batches": self.batches,
            "self_seconds": self.self_seconds.to_dict(),
            "rows_in": self.rows_in.to_dict(),
            "rows_out": self.rows_out.to_dict(),
            "state_bytes": self.state_bytes.to_dict(),
            "state_delta": self.state_delta.to_dict(),
            "nd_rows": self.nd_rows.to_dict(),
            "nd_delta": self.nd_delta.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "OperatorProfile":
        prof = cls(str(data["label"]))
        prof.batches = int(data.get("batches", 0))
        for name in ("self_seconds", "rows_in", "rows_out", "state_bytes",
                     "state_delta", "nd_rows", "nd_delta"):
            if name in data:
                setattr(prof, name, Ewma.from_dict(data[name]))
        return prof


class QueryProfile:
    """All rolling state for one query shape (one ``plan_signature``).

    Operator labels embed object ids and differ between processes, so
    cross-run aggregation keys operators by their *normalized* label
    (:func:`normalize_label`); within one run the raw labels are kept so
    live views (``iolap top``) can show the actual operators.
    """

    def __init__(self, signature: str, description: str = ""):
        self.signature = signature
        self.description = description
        self.runs = 0
        self.operators: dict[str, OperatorProfile] = {}
        #: Whole-batch wall seconds and rows-per-batch EWMAs.
        self.batch_seconds = Ewma()
        self.batch_rows = Ewma()
        #: CI convergence constant: rsd ≈ c / sqrt(seen_rows).
        self.ci_c = Ewma()
        #: Per-kernel counter rates (KernelStats deltas per batch).
        self.kernels: dict[str, Ewma] = {}
        #: Recent per-batch cost-model samples:
        #: (rows, nd_rows, state_bytes, seconds).
        self.samples: list[list[float]] = []

    # -- updates -----------------------------------------------------------------

    def operator(self, label: str) -> OperatorProfile:
        prof = self.operators.get(label)
        if prof is None:
            prof = self.operators[label] = OperatorProfile(label)
        return prof

    def add_sample(self, rows: float, nd_rows: float, state_bytes: float,
                   seconds: float) -> None:
        self.samples.append([float(rows), float(nd_rows),
                             float(state_bytes), float(seconds)])
        if len(self.samples) > MAX_SAMPLES:
            del self.samples[: len(self.samples) - MAX_SAMPLES]

    def kernel(self, name: str) -> Ewma:
        ew = self.kernels.get(name)
        if ew is None:
            ew = self.kernels[name] = Ewma()
        return ew

    # -- views -------------------------------------------------------------------

    def hot_operators(self, top: int = 10) -> list[OperatorProfile]:
        """Operators by EWMA self time, hottest first."""
        return sorted(
            self.operators.values(),
            key=lambda p: -p.self_seconds.get(),
        )[:top]

    # -- persistence -------------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "signature": self.signature,
            "description": self.description,
            "runs": self.runs,
            "batch_seconds": self.batch_seconds.to_dict(),
            "batch_rows": self.batch_rows.to_dict(),
            "ci_c": self.ci_c.to_dict(),
            "operators": {
                key: prof.to_dict()
                for key, prof in sorted(self.operators.items())
            },
            "kernels": {
                name: ew.to_dict() for name, ew in sorted(self.kernels.items())
            },
            "samples": [list(s) for s in self.samples],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "QueryProfile":
        prof = cls(str(data["signature"]), str(data.get("description", "")))
        prof.runs = int(data.get("runs", 0))
        prof.batch_seconds = Ewma.from_dict(data.get("batch_seconds", {}))
        prof.batch_rows = Ewma.from_dict(data.get("batch_rows", {}))
        prof.ci_c = Ewma.from_dict(data.get("ci_c", {}))
        for key, op in (data.get("operators") or {}).items():
            prof.operators[key] = OperatorProfile.from_dict(op)
        for name, ew in (data.get("kernels") or {}).items():
            prof.kernels[name] = Ewma.from_dict(ew)
        prof.samples = [
            [float(v) for v in s] for s in (data.get("samples") or [])
        ][-MAX_SAMPLES:]
        return prof


def normalize_label(label: str) -> str:
    """Strip the per-process ``id()`` suffixes operator labels embed
    (``select:140234...`` -> ``select``) so profiles aggregate across
    runs of the same plan shape."""
    head, sep, tail = label.partition(":")
    if sep and tail.isdigit():
        return head
    return label


class ProfileStore:
    """The ``profiles.json`` artifact: query profiles keyed by signature."""

    def __init__(self) -> None:
        self.queries: dict[str, QueryProfile] = {}

    def get_or_create(self, signature: str, description: str = "") -> QueryProfile:
        prof = self.queries.get(signature)
        if prof is None:
            prof = self.queries[signature] = QueryProfile(signature, description)
        elif description and not prof.description:
            prof.description = description
        return prof

    @classmethod
    def load(cls, path: str) -> "ProfileStore":
        """Load a profile artifact; missing or unreadable files yield an
        empty store (profiles are an accelerator, never a dependency)."""
        store = cls()
        try:
            with open(path) as fh:
                data = json.load(fh)
        except (OSError, ValueError):
            return store
        if not isinstance(data, dict) or data.get("schema") != PROFILES_SCHEMA:
            return store
        for sig, entry in (data.get("queries") or {}).items():
            try:
                store.queries[sig] = QueryProfile.from_dict(entry)
            except (KeyError, TypeError, ValueError):
                continue
        return store

    def save(self, path: str) -> None:
        """Atomically write the artifact (write-temp + rename)."""
        doc = {
            "schema": PROFILES_SCHEMA,
            "queries": {
                sig: prof.to_dict() for sig, prof in sorted(self.queries.items())
            },
        }
        tmp = f"{path}.tmp.{os.getpid()}"
        with open(tmp, "w") as fh:
            json.dump(doc, fh, indent=2, sort_keys=True)
            fh.write("\n")
        os.replace(tmp, path)


class StackSampler:
    """Sampling stack profiler: periodic ``sys._current_frames()`` reads.

    Aggregates collapsed stacks (innermost ``repro`` frames) of the
    thread that started it. Read-only with respect to engine state, so
    arming it cannot change results; it is a daemon thread and dies with
    the process if ``stop`` is never called.
    """

    def __init__(self, interval: float = 0.005, max_depth: int = 12):
        self.interval = interval
        self.max_depth = max_depth
        self.counts: dict[str, int] = {}
        self.samples = 0
        self._target: int | None = None
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    def start(self) -> None:
        self._target = threading.get_ident()
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="iolap-stack-sampler", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=1.0)
            self._thread = None

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            frames = sys._current_frames()
            frame = frames.get(self._target)  # type: ignore[arg-type]
            if frame is None:
                continue
            stack: list[str] = []
            depth = 0
            while frame is not None and depth < 64:
                code = frame.f_code
                if "repro" in code.co_filename:
                    stack.append(code.co_name)
                    if len(stack) >= self.max_depth:
                        break
                frame = frame.f_back
                depth += 1
            if not stack:
                continue
            key = ";".join(reversed(stack))
            self.counts[key] = self.counts.get(key, 0) + 1
            self.samples += 1

    def top_stacks(self, top: int = 10) -> list[tuple[str, int]]:
        return sorted(self.counts.items(), key=lambda kv: -kv[1])[:top]

    def to_dict(self) -> dict:
        return {
            "samples": self.samples,
            "interval_seconds": self.interval,
            "top_stacks": [
                {"stack": stack, "count": count}
                for stack, count in self.top_stacks(20)
            ],
        }


class ContinuousProfiler:
    """Low-overhead per-run profiler driven by the controller.

    Lifecycle (all on the controller thread):

    * constructed once per :meth:`OnlineQueryEngine.run` via
      :meth:`for_run` — loads ``profiles.json`` when a path is
      configured and selects the plan's :class:`QueryProfile`;
    * :meth:`predict_batch_seconds` before each batch (a cost-model
      passthrough; 0.0 until the warm-up quota of samples exists);
    * :meth:`observe_batch` after each batch — folds the batch's
      ``BatchMetrics`` + registry gauges + partial-result CI widths into
      the rolling profile, refreshes the cost model and its calibration;
    * :meth:`finish` in the run's ``finally`` — persists the store.
    """

    def __init__(
        self,
        profile: QueryProfile,
        store: ProfileStore | None = None,
        path: str | None = None,
        warmup_batches: int = 5,
        stack: bool = False,
    ):
        from repro.obs.costmodel import CostModel

        self.profile = profile
        self.store = store
        self.path = path
        self.warmup_batches = warmup_batches
        self.model = CostModel(profile, warmup_batches=warmup_batches)
        self.sampler = StackSampler() if stack else None
        #: Last observed per-op absolutes, for delta tracking.
        self._last_nd: dict[str, float] = {}
        self._last_state: dict[str, float] = {}
        self._last_rows_in: dict[str, float] = {}
        self._last_rows_out: dict[str, float] = {}
        self._last_kernels: dict[str, float] = {}
        self._last_nd_total = 0.0
        self._last_state_total = 0.0
        #: The prediction issued for the in-flight batch (or None).
        self._pending_prediction: float | None = None
        self.batches_observed = 0
        profile.runs += 1
        if self.sampler is not None:
            self.sampler.start()

    @classmethod
    def for_run(cls, config, plan: "PlanNode") -> "ContinuousProfiler":
        """Build the profiler the controller hangs off one run."""
        path = getattr(config, "profile_path", None)
        store = ProfileStore.load(path) if path else ProfileStore()
        signature = plan_signature(plan)
        description = plan.describe().splitlines()[0]
        profile = store.get_or_create(signature, description)
        return cls(
            profile,
            store=store,
            path=path,
            warmup_batches=getattr(config, "profile_warmup_batches", 5),
            stack=getattr(config, "profile_stack", False),
        )

    # -- prediction --------------------------------------------------------------

    def predict_batch_seconds(self, batch_rows: int) -> float:
        """Predicted wall seconds of the next batch; 0.0 pre-warm-up.

        The issued prediction is remembered so :meth:`observe_batch` can
        score it against the actual once the batch lands.
        """
        pred = self.model.predict_batch_seconds(batch_rows)
        self._pending_prediction = pred if pred > 0.0 else None
        return pred

    def predict_batches_to_ci(self, target_rsd: float, batch_rows: int,
                              seen_rows: int) -> int | None:
        """Batches still needed before the worst rsd drops under target."""
        return self.model.predict_batches_to_ci(
            target_rsd, batch_rows, seen_rows
        )

    # -- observation -------------------------------------------------------------

    def observe_batch(
        self,
        ctx: "RuntimeContext",
        bm: "BatchMetrics",
        partial: "PartialResult",
    ) -> None:
        """Fold one finished batch into the rolling profile.

        Called on the controller thread after the batch's metrics merge,
        so every number read here is a consistent cut.
        """
        prof = self.profile
        rows = float(bm.new_tuples)
        # Recovery replay is a failure-path cost the model must not learn
        # as the price of a normal batch; profile the net batch time.
        seconds = max(0.0, bm.wall_seconds - bm.recovery_seconds)
        prof.batch_rows.update(rows)
        prof.batch_seconds.update(seconds)

        # Per-operator self times + state footprints from BatchMetrics.
        for label, op_seconds in bm.op_seconds.items():
            prof.operator(label).self_seconds.update(op_seconds)
        for label, nbytes in bm.state_bytes.items():
            op = prof.operator(label)
            op.state_bytes.update(nbytes)
            op.state_delta.update(nbytes - self._last_state.get(label, 0.0))
            self._last_state[label] = float(nbytes)
        for label in bm.op_seconds:
            prof.operator(label).batches += 1

        # Registry-fed signals: rows in/out and |U_i| ND-set sizes. The
        # registry is live whenever profiling is on (the engine swaps in
        # a metrics-only session when tracing is off).
        nd_total = 0.0
        reg = ctx.obs.metrics
        if reg.enabled:
            for _key, name, labels, inst in reg.series():
                op_label = labels.get("op")
                if op_label is None:
                    continue
                if name == "nd.rows":
                    value = float(inst.value)
                    nd_total += value
                    op = prof.operator(str(op_label))
                    op.nd_rows.update(value)
                    op.nd_delta.update(
                        value - self._last_nd.get(str(op_label), 0.0)
                    )
                    self._last_nd[str(op_label)] = value
                elif name == "op.rows_in":
                    # Counters are cumulative; profile the per-batch delta.
                    value = float(inst.value)
                    prof.operator(str(op_label)).rows_in.update(
                        value - self._last_rows_in.get(str(op_label), 0.0)
                    )
                    self._last_rows_in[str(op_label)] = value
                elif name == "op.rows_out":
                    value = float(inst.value)
                    prof.operator(str(op_label)).rows_out.update(
                        value - self._last_rows_out.get(str(op_label), 0.0)
                    )
                    self._last_rows_out[str(op_label)] = value
        self._last_nd_total = nd_total
        state_total = float(bm.total_state_bytes)
        self._last_state_total = state_total

        # Per-kernel counter deltas (process-global KernelStats).
        from repro.kernels.stats import STATS as KERNEL_STATS

        for name, value in KERNEL_STATS.snapshot().items():
            delta = value - self._last_kernels.get(name, 0.0)
            self._last_kernels[name] = float(value)
            if delta:
                prof.kernel(name).update(delta)

        # CI-width trajectory: rsd ≈ c / sqrt(seen_rows)  =>  c = rsd·√n.
        rsd = partial.max_relative_stdev()
        if rsd == rsd and rsd > 0.0 and ctx.seen_rows > 0:
            prof.ci_c.update(rsd * (ctx.seen_rows ** 0.5))

        # Cost-model sample + calibration of the issued prediction.
        prof.add_sample(rows, nd_total, state_total, seconds)
        if self._pending_prediction is not None:
            self.model.score(self._pending_prediction, seconds)
            self._pending_prediction = None
        self.model.refit()
        self.batches_observed += 1

    # -- current feature levels (for prediction parameterization) ----------------

    @property
    def last_nd_rows(self) -> float:
        return self._last_nd_total

    @property
    def last_state_bytes(self) -> float:
        return self._last_state_total

    def calibration(self) -> dict:
        """Current prediction-vs-actual calibration (RunMetrics payload)."""
        return self.model.calibration()

    def finish(self) -> None:
        """Persist the profile artifact and stop the stack sampler."""
        if self.sampler is not None:
            self.sampler.stop()
        if self.store is not None and self.path:
            try:
                self.store.save(self.path)
            except OSError:
                # Persistence is best-effort; the run's results stand.
                pass

    def stack_report(self) -> dict | None:
        return self.sampler.to_dict() if self.sampler is not None else None
