"""Nested spans with deterministic parallel collection.

The tracer mirrors the engine's metrics design: worker threads never
write shared event buffers. Each thread appends finished events to its
*current* :class:`TraceBuffer` — the main thread's root buffer by
default, or a per-execution-unit scratch buffer pushed thread-locally by
the parallel executor (exactly the ``ctx.push_metrics`` pattern). After
a batch, the executor merges the scratch buffers into the root in unit
order, so a parallel run's event *sequence* is deterministic even though
its timestamps are not.

Span nesting is positional: a span's events carry the buffer's track
name, and the Chrome exporter reconstructs nesting from per-track time
containment, which holds by construction (spans on one track come from
one thread and strictly nest).

The default tracer is :data:`NULL_TRACER`: ``enabled`` is False, every
span call returns one shared no-op handle, and nothing is ever
allocated or recorded — instrumentation sites guard any argument
computation behind ``tracer.enabled``.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Iterable

from repro.obs.events import EVENT_SCHEMA_VERSION, jsonable
from repro.obs.sinks import EventBus


class TraceBuffer:
    """An append-only event list bound to one logical track."""

    __slots__ = ("track", "events")

    def __init__(self, track: str):
        self.track = track
        self.events: list[dict] = []


class Span:
    """A live span handle; a context manager that records on exit."""

    __slots__ = ("_tracer", "_buf", "name", "cat", "batch", "args", "_t0")

    def __init__(
        self,
        tracer: "Tracer",
        buf: TraceBuffer,
        name: str,
        cat: str,
        batch: int | None,
        args: dict | None,
    ):
        self._tracer = tracer
        self._buf = buf
        self.name = name
        self.cat = cat
        self.batch = batch
        self.args = args
        self._t0 = tracer.now()

    def set(self, **args: object) -> None:
        """Attach details discovered while the span is running."""
        if self.args is None:
            self.args = {}
        self.args.update(args)

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc is not None:
            self.set(error=f"{type(exc).__name__}: {exc}")
        event = {
            "v": EVENT_SCHEMA_VERSION,
            "kind": "span",
            "name": self.name,
            "cat": self.cat,
            "track": self._buf.track,
            "ts": self._t0,
            "dur": max(0.0, self._tracer.now() - self._t0),
        }
        if self.batch is not None:
            event["batch"] = self.batch
        if self.args:
            event["args"] = {k: jsonable(v) for k, v in self.args.items()}
        self._buf.events.append(event)

    def __bool__(self) -> bool:
        return True


class Tracer:
    """Produces spans, instants and counter samples for one execution."""

    enabled = True

    def __init__(self, bus: EventBus, clock: Callable[[], float] = time.perf_counter):
        self.bus = bus
        self._clock = clock
        self._epoch = clock()
        self._root = TraceBuffer("main")
        self._local = threading.local()

    # -- time ----------------------------------------------------------------------

    def now(self) -> float:
        """Seconds since the tracer's epoch."""
        return self._clock() - self._epoch

    # -- buffer routing (the parallel-scratch design) ------------------------------

    def buffer(self, track: str) -> TraceBuffer:
        """A fresh scratch buffer for one execution unit's events."""
        return TraceBuffer(track)

    def push_buffer(self, buf: TraceBuffer) -> None:
        """Route this thread's events to ``buf`` until popped."""
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        stack.append(buf)

    def pop_buffer(self) -> TraceBuffer:
        return self._local.stack.pop()

    def _current(self) -> TraceBuffer:
        stack = getattr(self._local, "stack", None)
        if stack:
            return stack[-1]
        return self._root

    def merge(self, buffers: Iterable[TraceBuffer]) -> None:
        """Fold scratch buffers into the root, in the order given.

        Callers pass buffers in unit-index order (the executor sorts), so
        the merged event sequence matches a serial run's structure.
        """
        for buf in buffers:
            self._root.events.extend(buf.events)
            buf.events = []

    def flush(self) -> None:
        """Forward all root-buffer events to the bus (main thread only)."""
        events, self._root.events = self._root.events, []
        for event in events:
            self.bus.emit(event)
        self.bus.flush()

    # -- producing events ----------------------------------------------------------

    def span(
        self, name: str, cat: str = "exec", batch: int | None = None, **args: object
    ) -> Span:
        return Span(self, self._current(), name, cat, batch, args or None)

    def event(
        self,
        kind: str,
        name: str,
        cat: str,
        batch: int | None = None,
        value: float | None = None,
        **args: object,
    ) -> None:
        record: dict = {
            "v": EVENT_SCHEMA_VERSION,
            "kind": kind,
            "name": name,
            "cat": cat,
            "track": self._current().track,
            "ts": self.now(),
        }
        if value is not None:
            record["value"] = value
        if batch is not None:
            record["batch"] = batch
        if args:
            record["args"] = {k: jsonable(v) for k, v in args.items()}
        self._current().events.append(record)

    def instant(self, name: str, cat: str = "exec", batch: int | None = None,
                **args: object) -> None:
        self.event("instant", name, cat, batch, **args)

    def warning(self, name: str, batch: int | None = None, **args: object) -> None:
        """A structured warning (contract violation, rejected query, range
        failure) placed on the trace timeline."""
        self.event("warning", name, "warning", batch, **args)

    def counter(self, name: str, value: float, batch: int | None = None) -> None:
        """One sample of a numeric series (rendered as a counter track)."""
        if value == value and abs(value) != float("inf"):  # finite only
            self.event("counter", name, "metric", batch, value=value)

    def convergence(self, name: str, batch: int | None = None, **args: object) -> None:
        self.event("convergence", name, "convergence", batch, **args)


class _NullSpan:
    """Shared inert span: no state, no allocation, enters and exits as a
    no-op. ``bool()`` is False so call sites can skip attr computation."""

    __slots__ = ()

    def set(self, **args: object) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass

    def __bool__(self) -> bool:
        return False


_NULL_SPAN = _NullSpan()
_NULL_BUFFER = TraceBuffer("null")


class NullTracer:
    """The default tracer: disabled, allocation-free, safe to call."""

    enabled = False

    def now(self) -> float:
        return 0.0

    def buffer(self, track: str) -> TraceBuffer:
        return _NULL_BUFFER

    def push_buffer(self, buf: TraceBuffer) -> None:
        pass

    def pop_buffer(self) -> TraceBuffer:
        return _NULL_BUFFER

    def merge(self, buffers: Iterable[TraceBuffer]) -> None:
        pass

    def flush(self) -> None:
        pass

    def span(self, name: str, cat: str = "exec", batch: int | None = None,
             **args: object) -> _NullSpan:
        return _NULL_SPAN

    def event(self, kind: str, name: str, cat: str, batch: int | None = None,
              value: float | None = None, **args: object) -> None:
        pass

    def instant(self, name: str, cat: str = "exec", batch: int | None = None,
                **args: object) -> None:
        pass

    def warning(self, name: str, batch: int | None = None, **args: object) -> None:
        pass

    def counter(self, name: str, value: float, batch: int | None = None) -> None:
        pass

    def convergence(self, name: str, batch: int | None = None, **args: object) -> None:
        pass


NULL_TRACER = NullTracer()
