"""Post-hoc trace summarization (``iolap report``).

Reads a finished event-log trace, validates every record against the
pinned schema, and renders the run's story: where the time went (slowest
spans, by name and individually), how operator state grew batch over
batch, the failure-recovery timeline, warnings, and the convergence of
every uncertain result series.

``iolap report --json`` emits :meth:`TraceSummary.to_dict`, whose field
set is *pinned* (like the metrics artifact): :func:`validate_report`
rejects missing and unknown top-level fields, so downstream dashboards
can rely on the shape. Extend :data:`REPORT_FIELDS` — and bump
:data:`REPORT_SCHEMA_VERSION` — to add fields.
"""

from __future__ import annotations

from typing import Any, Iterable

from repro.obs.events import read_events

#: Bump whenever a field is added/removed/retyped in ``REPORT_FIELDS``.
#: v1 -> v2 added the rollup-tier summary field.
REPORT_SCHEMA_VERSION = 2

_NUMBER = (int, float)

#: Field name -> accepted types of one ``TraceSummary.to_dict()``.
REPORT_FIELDS: dict[str, tuple[type, ...]] = {
    "schema_version": (int,),
    "num_events": (int,),
    "by_kind": (dict,),
    "num_batches": (int,),
    "run_seconds": _NUMBER,
    "span_rollup": (list,),
    "slowest_spans": (list,),
    "state_series": (dict,),
    "recovery": (list,),
    "warning_counts": (dict,),
    "convergence": (list,),
    "rollup": (dict,),
}


def validate_report(data: Any) -> None:
    """Validate one ``report --json`` artifact; raise ``ValueError``."""
    if not isinstance(data, dict):
        raise ValueError("report must be a JSON object")
    version = data.get("schema_version")
    if version != REPORT_SCHEMA_VERSION:
        raise ValueError(
            f"report schema version {version!r} != {REPORT_SCHEMA_VERSION}"
        )
    missing = set(REPORT_FIELDS) - set(data)
    if missing:
        raise ValueError(f"report is missing field(s) {sorted(missing)}")
    unknown = set(data) - set(REPORT_FIELDS)
    if unknown:
        raise ValueError(
            f"report has unknown field(s) {sorted(unknown)}; the report "
            "schema is pinned — extend repro.obs.report.REPORT_FIELDS "
            "(and bump REPORT_SCHEMA_VERSION) to add fields"
        )
    for name, types in REPORT_FIELDS.items():
        value = data[name]
        if isinstance(value, bool) or not isinstance(value, types):
            raise ValueError(
                f"report field {name!r} has type {type(value).__name__}"
            )
    for row in data["span_rollup"]:
        if set(row) != {"name", "count", "total_seconds", "max_seconds"}:
            raise ValueError(f"bad span_rollup row {sorted(row)}")
    for row in data["slowest_spans"]:
        if set(row) != {"name", "detail", "track", "batch", "ts", "seconds"}:
            raise ValueError(f"bad slowest_spans row {sorted(row)}")
    for name, samples in data["state_series"].items():
        if not isinstance(name, str) or not isinstance(samples, list):
            raise ValueError(f"bad state_series entry {name!r}")
    for row in data["convergence"]:
        if set(row) != {
            "group", "name", "samples", "first_rsd", "last_rsd",
            "estimate", "ci_lo", "ci_hi",
        }:
            raise ValueError(f"bad convergence row {sorted(row)}")


class TraceSummary:
    """Aggregated view over one trace's events."""

    def __init__(self, events: Iterable[dict]):
        self.events = list(events)
        self.by_kind: dict[str, int] = {}
        self.spans: list[dict] = []
        self.warnings: list[dict] = []
        self.counters: dict[str, list[tuple[int | None, float]]] = {}
        self.convergence: dict[tuple[str, str], list[dict]] = {}
        for event in self.events:
            kind = event["kind"]
            self.by_kind[kind] = self.by_kind.get(kind, 0) + 1
            if kind == "span":
                self.spans.append(event)
            elif kind == "warning":
                self.warnings.append(event)
            elif kind == "counter":
                self.counters.setdefault(event["name"], []).append(
                    (event.get("batch"), event["value"])
                )
            elif kind == "convergence":
                args = event.get("args") or {}
                key = (str(args.get("group", "")), event["name"])
                self.convergence.setdefault(key, []).append(event)

    @classmethod
    def from_file(cls, path: str) -> "TraceSummary":
        return cls(read_events(path, validate=True))

    # -- derived views -------------------------------------------------------------

    def run_duration(self) -> float:
        runs = [s["dur"] for s in self.spans if s["name"] == "run"]
        if runs:
            return max(runs)
        if not self.events:
            return 0.0
        return max(
            e["ts"] + (e["dur"] if e["kind"] == "span" else 0.0) for e in self.events
        )

    def num_batches(self) -> int:
        return sum(1 for s in self.spans if s["name"] == "batch")

    def span_rollup(self) -> list[tuple[str, int, float, float]]:
        """(name, count, total dur, max dur) sorted by total dur desc."""
        acc: dict[str, tuple[int, float, float]] = {}
        for span in self.spans:
            count, total, peak = acc.get(span["name"], (0, 0.0, 0.0))
            acc[span["name"]] = (
                count + 1,
                total + span["dur"],
                max(peak, span["dur"]),
            )
        rows = [(name, c, t, p) for name, (c, t, p) in acc.items()]
        rows.sort(key=lambda r: -r[2])
        return rows

    def slowest_spans(self, top: int = 10) -> list[dict]:
        return sorted(self.spans, key=lambda s: -s["dur"])[:top]

    def counter_trajectory(self, name: str) -> list[tuple[int | None, float]]:
        return self.counters.get(name, [])

    def state_series(self) -> dict[str, list[tuple[int | None, float]]]:
        return {
            name: samples
            for name, samples in self.counters.items()
            if name.startswith("state.")
        }

    def rollup_summary(self) -> dict:
        """Resolved/ND group split and tier hit rate of the run.

        Sums the per-op ``rollup.*`` series: the gauges
        ``rollup.groups``/``rollup.nd_groups`` are sampled once per batch
        (so their sample sums are group-batches served from each tier)
        and the ``hits``/``migrations``/``demotions`` counters are
        monotone (so their last samples are run totals). Empty when the
        run had no rollup series (``rollup=False`` or no eligible sink).
        """
        served = hot = hits = migrations = demotions = 0.0
        found = False
        for key, samples in self.counters.items():
            base = key.split("{", 1)[0]
            if not base.startswith("rollup."):
                continue
            found = True
            if not samples:
                continue
            if base == "rollup.groups":
                served += sum(v for _, v in samples)
            elif base == "rollup.nd_groups":
                hot += sum(v for _, v in samples)
            elif base == "rollup.hits":
                hits += samples[-1][1]
            elif base == "rollup.migrations":
                migrations += samples[-1][1]
            elif base == "rollup.demotions":
                demotions += samples[-1][1]
        if not found:
            return {}
        total = served + hot
        return {
            "served_group_batches": served,
            "hot_group_batches": hot,
            "hits": hits,
            "migrations": migrations,
            "demotions": demotions,
            "hit_rate": served / total if total else 0.0,
        }

    def recovery_events(self) -> list[dict]:
        timeline = [s for s in self.spans if s["name"] == "recovery-replay"]
        timeline += [
            w for w in self.warnings if w["name"] == "range-integrity-failure"
        ]
        timeline.sort(key=lambda e: e["ts"])
        return timeline

    def to_dict(self, top: int = 10) -> dict:
        """Machine-readable summary (``iolap report --json``).

        The shape is pinned by :data:`REPORT_FIELDS` /
        :func:`validate_report`; keep the two in sync.
        """
        warning_counts: dict[str, int] = {}
        for w in self.warnings:
            warning_counts[w["name"]] = warning_counts.get(w["name"], 0) + 1
        convergence = []
        for (group, name), events in sorted(self.convergence.items()):
            first = (events[0].get("args") or {}).get("rsd")
            last_args = events[-1].get("args") or {}
            convergence.append(
                {
                    "group": group,
                    "name": name,
                    "samples": len(events),
                    "first_rsd": first if isinstance(first, _NUMBER) else None,
                    "last_rsd": (
                        last_args.get("rsd")
                        if isinstance(last_args.get("rsd"), _NUMBER)
                        else None
                    ),
                    "estimate": last_args.get("estimate"),
                    "ci_lo": last_args.get("ci_lo"),
                    "ci_hi": last_args.get("ci_hi"),
                }
            )
        return {
            "schema_version": REPORT_SCHEMA_VERSION,
            "num_events": len(self.events),
            "by_kind": dict(sorted(self.by_kind.items())),
            "num_batches": self.num_batches(),
            "run_seconds": self.run_duration(),
            "span_rollup": [
                {
                    "name": name,
                    "count": count,
                    "total_seconds": total,
                    "max_seconds": peak,
                }
                for name, count, total, peak in self.span_rollup()
            ],
            "slowest_spans": [
                {
                    "name": span["name"],
                    "detail": _span_detail(span),
                    "track": span["track"],
                    "batch": span.get("batch"),
                    "ts": span["ts"],
                    "seconds": span["dur"],
                }
                for span in self.slowest_spans(top)
            ],
            "state_series": {
                name: [[batch, value] for batch, value in samples]
                for name, samples in self.state_series().items()
            },
            "recovery": [
                {
                    "kind": event["kind"],
                    "ts": event["ts"],
                    "batch": event.get("batch"),
                    "seconds": event.get("dur", 0.0),
                    "args": dict(event.get("args") or {}),
                }
                for event in self.recovery_events()
            ],
            "warning_counts": warning_counts,
            "convergence": convergence,
            "rollup": self.rollup_summary(),
        }


def _span_detail(span: dict) -> str:
    args = span.get("args") or {}
    label = args.get("op") or args.get("unit") or ""
    batch = f" b{span['batch']}" if "batch" in span else ""
    return f"{span['name']}{(' ' + str(label)) if label else ''}{batch}"


def render_report(summary: TraceSummary, top: int = 10) -> str:
    """Human-readable multi-section report of one trace."""
    out: list[str] = []
    counts = ", ".join(f"{k}={v}" for k, v in sorted(summary.by_kind.items()))
    out.append("== trace summary ==")
    out.append(
        f"events: {len(summary.events)} ({counts or 'none'})  "
        f"batches: {summary.num_batches()}  "
        f"run: {summary.run_duration()*1000:.1f} ms"
    )

    rollup = summary.span_rollup()
    if rollup:
        out.append("")
        out.append("== where the time went (span totals) ==")
        for name, count, total, peak in rollup[:top]:
            out.append(
                f"  {name:<16} x{count:<5} total {total*1000:9.1f} ms   "
                f"max {peak*1000:8.1f} ms"
            )
        out.append("")
        out.append("== slowest individual spans ==")
        for span in summary.slowest_spans(top):
            out.append(
                f"  {span['dur']*1000:9.1f} ms  {_span_detail(span)} "
                f"[{span['track']}]"
            )

    state = summary.state_series()
    if state:
        out.append("")
        out.append("== state growth (bytes, first -> peak -> last) ==")
        keyed = sorted(
            state.items(), key=lambda kv: -(kv[1][-1][1] if kv[1] else 0.0)
        )
        for name, samples in keyed[:top]:
            values = [v for _, v in samples]
            out.append(
                f"  {name:<48} {values[0]:12,.0f} -> {max(values):12,.0f} "
                f"-> {values[-1]:12,.0f}"
            )

    tiers = summary.rollup_summary()
    if tiers:
        out.append("")
        out.append("== rollup tier (resolved vs ND group-batches) ==")
        out.append(
            f"  served from rollup: {tiers['served_group_batches']:12,.0f}   "
            f"recomputed hot: {tiers['hot_group_batches']:12,.0f}   "
            f"hit rate {tiers['hit_rate']*100:5.1f}%"
        )
        out.append(
            f"  migrations: {tiers['migrations']:,.0f}   "
            f"demotions: {tiers['demotions']:,.0f}"
        )

    recovery = summary.recovery_events()
    out.append("")
    out.append("== recovery timeline ==")
    if recovery:
        for event in recovery:
            if event["kind"] == "span":
                args = event.get("args") or {}
                out.append(
                    f"  {event['ts']*1000:9.1f} ms  replay of "
                    f"{args.get('replayed_batches', '?')} batch(es) before "
                    f"batch {event.get('batch', '?')} "
                    f"({event['dur']*1000:.1f} ms)"
                )
            else:
                args = event.get("args") or {}
                out.append(
                    f"  {event['ts']*1000:9.1f} ms  integrity failure at "
                    f"batch {event.get('batch', '?')}: "
                    f"{args.get('message', '')}"
                )
    else:
        out.append("  (no failure recoveries)")

    other_warnings = [
        w for w in summary.warnings if w["name"] != "range-integrity-failure"
    ]
    if other_warnings:
        out.append("")
        out.append("== warnings ==")
        byname: dict[str, int] = {}
        for w in other_warnings:
            byname[w["name"]] = byname.get(w["name"], 0) + 1
        for name, count in sorted(byname.items()):
            out.append(f"  {name} x{count}")

    if summary.convergence:
        out.append("")
        out.append("== convergence (rsd first -> last) ==")
        for (group, name), events in sorted(summary.convergence.items()):
            first = (events[0].get("args") or {}).get("rsd")
            last_args = events[-1].get("args") or {}
            last = last_args.get("rsd")
            out.append(
                f"  {(group or 'all') + ':' + name:<40} "
                f"{_fmt(first)} -> {_fmt(last)}  "
                f"final {last_args.get('estimate', float('nan')):,.6g} "
                f"[{last_args.get('ci_lo', float('nan')):,.6g}, "
                f"{last_args.get('ci_hi', float('nan')):,.6g}]"
            )
    return "\n".join(out)


def _fmt(rsd: object) -> str:
    if not isinstance(rsd, (int, float)):
        return "n/a"
    return f"{rsd:.4f}"
