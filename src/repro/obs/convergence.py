"""Live convergence reporting: estimate ± CI per group, every batch.

Online aggregation is only as useful as the convergence the user can
*see* (the paper's Fig. 7(a); DeepOLA makes the same point): after every
mini-batch the reporter renders, per result group and aggregate column,
the current point estimate, its bootstrap confidence interval, and the
relative standard deviation — and emits the same numbers as
``convergence`` events so a saved trace replays the full curve
(``iolap report`` summarizes it; Perfetto shows the instants inline).
"""

from __future__ import annotations

from typing import Any, Callable

from repro.obs.session import NULL_OBS


class ConvergenceReporter:
    """Tracks and renders per-group estimate ± CI across batches."""

    def __init__(
        self,
        obs: Any = NULL_OBS,
        emit_line: Callable[[str], None] | None = None,
        level: float = 0.95,
        max_groups: int = 8,
    ):
        self.obs = obs
        self.emit_line = emit_line
        self.level = level
        self.max_groups = max_groups
        #: (group label, column) -> list of (batch, estimate, lo, hi, rsd).
        self.history: dict[tuple[str, str], list[tuple]] = {}

    def update(self, partial: Any) -> list[str]:
        """Fold one :class:`~repro.core.result.PartialResult` in; returns
        the rendered lines (and emits them through ``emit_line``)."""
        from repro.core.values import UncertainValue

        tracer = self.obs.tracer
        lines: list[str] = []
        shown = 0
        total = 0
        for row in partial.rows:
            group = _group_label(row)
            for name, value in row.items():
                if not isinstance(value, UncertainValue):
                    continue
                total += 1
                estimate = value.value
                lo, hi = value.confidence_interval(self.level)
                rsd = value.relative_stdev()
                self.history.setdefault((group, name), []).append(
                    (partial.batch_no, estimate, lo, hi, rsd)
                )
                tracer.convergence(
                    name,
                    batch=partial.batch_no,
                    group=group,
                    estimate=estimate,
                    ci_lo=lo,
                    ci_hi=hi,
                    rsd=rsd,
                    fraction=partial.fraction_processed,
                )
                if shown < self.max_groups:
                    lines.append(
                        f"  {group or 'all':>12}  {name} = {estimate:,.4g} "
                        f"± {max(estimate - lo, hi - estimate):,.3g} "
                        f"[{lo:,.4g}, {hi:,.4g}]  rsd {_fmt_rsd(rsd)}"
                    )
                    shown += 1
        hidden = total - shown
        if lines and self.emit_line is not None:
            header = (
                f"convergence @ batch {partial.batch_no}/{partial.num_batches} "
                f"({partial.fraction_processed:.0%} of stream)"
            )
            self.emit_line(header)
            for line in lines:
                self.emit_line(line)
            if hidden:
                self.emit_line(f"  ... {hidden} more series")
        return lines

    def final_summary(self) -> list[str]:
        """First → last rsd per tracked series (the convergence story)."""
        lines = []
        for (group, name), points in sorted(self.history.items()):
            first, last = points[0], points[-1]
            lines.append(
                f"{group or 'all'}:{name}  rsd {_fmt_rsd(first[4])} -> "
                f"{_fmt_rsd(last[4])} over {len(points)} batches "
                f"(final {last[1]:,.6g})"
            )
        return lines


def _group_label(row: dict[str, object]) -> str:
    """Join the deterministic (group-key) cells into a stable label."""
    from repro.core.values import UncertainValue

    parts = [
        f"{k}={v}" for k, v in row.items() if not isinstance(v, UncertainValue)
    ]
    return ",".join(parts)


def _fmt_rsd(rsd: float) -> str:
    return "n/a" if rsd != rsd else f"{rsd:.4f}"
