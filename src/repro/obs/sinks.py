"""Event sinks and the bus that fans events out to them.

Sinks are intentionally dumb: they receive already-formed schema-valid
event dicts (see :mod:`repro.obs.events`) in a deterministic order — the
tracer serializes all emission through the main thread — and persist or
buffer them. The bus owns sink lifecycle (flush/close).
"""

from __future__ import annotations

import json
from typing import IO, Iterable


class EventSink:
    """Receives finished event records, one at a time."""

    def emit(self, event: dict) -> None:
        raise NotImplementedError

    def flush(self) -> None:
        """Make everything emitted so far durable/visible."""

    def close(self) -> None:
        """Release resources; the sink receives no further events."""


class MemorySink(EventSink):
    """Buffers events in a list — the test and report-building sink."""

    def __init__(self) -> None:
        self.events: list[dict] = []

    def emit(self, event: dict) -> None:
        self.events.append(event)

    def __len__(self) -> int:
        return len(self.events)


class JsonlSink(EventSink):
    """Appends one JSON object per line to a file (``--trace-out``).

    ``allow_nan=False`` keeps the output strict JSON: the tracer already
    coerces non-finite floats to null, and anything that slips through
    should fail loudly here rather than produce an unparseable artifact.
    """

    def __init__(self, fh: IO[str], owns: bool = True):
        self._fh = fh
        self._owns = owns

    @classmethod
    def open(cls, path: str) -> "JsonlSink":
        return cls(open(path, "w"), owns=True)

    def emit(self, event: dict) -> None:
        self._fh.write(json.dumps(event, allow_nan=False, separators=(",", ":")))
        self._fh.write("\n")

    def flush(self) -> None:
        self._fh.flush()

    def close(self) -> None:
        self.flush()
        if self._owns:
            self._fh.close()


class EventBus:
    """Fans each event out to every attached sink."""

    def __init__(self, sinks: Iterable[EventSink] = ()):
        self.sinks: list[EventSink] = list(sinks)

    def attach(self, sink: EventSink) -> EventSink:
        self.sinks.append(sink)
        return sink

    def emit(self, event: dict) -> None:
        for sink in self.sinks:
            sink.emit(event)

    def flush(self) -> None:
        for sink in self.sinks:
            sink.flush()

    def close(self) -> None:
        for sink in self.sinks:
            sink.close()
        self.sinks = []
