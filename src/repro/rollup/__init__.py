"""Two-tier aggregation: the resolved-rollup plane (``rollup=True``).

The paper's Fig. 10 observation is that most groups become
near-deterministic early and then stop changing, yet a naive engine
re-finalizes every group every batch — per-batch cost grows with the
total group count instead of the shrinking ND set. This package holds
tier 1 of the fix: :class:`ResolvedRollupStore`, a per-sink store of
finalized group accumulators that have migrated out of the hot path.
The aggregate operator's per-batch loop iterates only groups with live
ND membership; the published block output is the union rollup ⊎ hot.

Migration and demotion are bit-exact inverses over
:class:`repro.core.sketch.SketchRow`, so a rollup-on run publishes
byte-identical partial results to a rollup-off run (enforced by tests).
"""

from repro.rollup.store import (
    ResolvedRollupStore,
    RollupEntry,
    demote_restored_rollups,
)

__all__ = ["ResolvedRollupStore", "RollupEntry", "demote_restored_rollups"]
