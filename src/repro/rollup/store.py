"""The resolved-rollup tier: finalized group accumulators off the hot path.

A :class:`ResolvedRollupStore` lives as one named entry ("rollup") of its
aggregate operator's state store, so it rides the checkpoint/restore
machinery like any other between-batch state. Each entry pairs the
group's published :class:`~repro.core.blocks.GroupValue` (shared by
reference with the persistent block output — the publish path reuses it
verbatim, which is what makes migrated groups free per batch) with the
extracted :class:`~repro.core.sketch.SketchRow` sums needed to fold the
group back into the sketch on demotion.

Invariants (DESIGN.md §15):

* A group key is in exactly one tier: the sketch (hot) or this store.
* Migration requires the group's pruning decision to be *resolved* and
  quiescent — no certain or volatile contribution for
  ``rollup_quiesce`` consecutive batches — so its finalized value is a
  fixed point of the per-batch recompute.
* Any touch (new contribution, recovery replay, pruning valve trip)
  demotes the group back to the sketch *before* the batch's fold, so
  the hot path never scatters into a missing row.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Iterator

if TYPE_CHECKING:
    from repro.core.blocks import GroupKey, GroupValue
    from repro.core.sketch import SketchRow
else:
    GroupKey = tuple


@dataclass
class RollupEntry:
    """One migrated group: its published value + its extracted sums."""

    group: "GroupValue"
    accum: "SketchRow"
    migrated_at: int


def _group_nbytes(group: "GroupValue") -> int:
    """Per-group published-value footprint (the block-output convention)."""
    per_group = 32
    for v in group.values.values():
        per_group += 8
        trials = getattr(v, "trials", None)
        if trials is not None:
            per_group += 8 * len(trials)
    return per_group


class ResolvedRollupStore:
    """Tier 1: finalized accumulators of resolved, quiescent groups."""

    #: ``estimate_nbytes`` threads its seen-set through
    #: :meth:`estimated_bytes`: the ``GroupValue`` objects here are shared
    #: by reference with the block-output entry of the same store, and
    #: must count once per store, not once per tier.
    nbytes_seen_aware = True

    def __init__(self) -> None:
        self.entries: dict[GroupKey, RollupEntry] = {}
        #: Lifetime migration/demotion counts (survive checkpoint rides;
        #: the obs layer samples them into the rollup.* series).
        self.migrations = 0
        self.demotions = 0
        #: Running footprint totals, maintained on migrate/demote so the
        #: per-batch accounting reads them in O(1) instead of re-walking
        #: every entry. Safe because entries are immutable while migrated
        #: (publishes replace GroupValues, demotion *copies* sums out).
        self._accum_bytes = 0
        self._group_bytes = 0
        self._group_ids: set[int] = set()

    def __deepcopy__(self, memo: dict) -> "ResolvedRollupStore":
        """Checkpoint copy: fresh dicts, shared immutable leaves.

        ``GroupValue`` and ``SketchRow`` objects are never mutated after
        migration (publishes replace, demotion *copies* the sums back
        into the sketch arrays), so a snapshot only needs its own entry
        dict — sharing keeps checkpoints O(entries) pointer copies.
        """
        clone = ResolvedRollupStore()
        memo[id(self)] = clone
        clone.entries = {
            key: RollupEntry(e.group, e.accum, e.migrated_at)
            for key, e in self.entries.items()
        }
        clone.migrations = self.migrations
        clone.demotions = self.demotions
        clone._accum_bytes = self._accum_bytes
        clone._group_bytes = self._group_bytes
        clone._group_ids = set(self._group_ids)
        return clone

    def __len__(self) -> int:
        return len(self.entries)

    def __contains__(self, key: GroupKey) -> bool:
        return key in self.entries

    def keys(self) -> Iterator[GroupKey]:
        return iter(self.entries)

    def migrate(
        self,
        key: GroupKey,
        group: "GroupValue",
        accum: "SketchRow",
        batch_no: int,
    ) -> None:
        assert key not in self.entries, f"group {key!r} already migrated"
        self.entries[key] = RollupEntry(group, accum, batch_no)
        self.migrations += 1
        self._accum_bytes += 48 + accum.estimated_bytes()
        self._group_bytes += _group_nbytes(group)
        self._group_ids.add(id(group))

    def demote(self, keys: Iterable[GroupKey]) -> dict[GroupKey, "SketchRow"]:
        """Pop ``keys``, returning their sum rows for sketch reinsertion."""
        rows: dict[GroupKey, SketchRow] = {}
        for key in keys:
            entry = self.entries.pop(key, None)
            if entry is not None:
                rows[key] = entry.accum
                self.demotions += 1
                self._accum_bytes -= 48 + entry.accum.estimated_bytes()
                self._group_bytes -= _group_nbytes(entry.group)
                self._group_ids.discard(id(entry.group))
        return rows

    def demote_all(self) -> dict[GroupKey, "SketchRow"]:
        return self.demote(list(self.entries))

    def estimated_bytes(self, seen: set[int] | None = None) -> int:
        """Footprint in bytes; ``seen`` dedups ``GroupValue`` objects
        shared with the block-output entry of the same store.

        The fast path serves the running totals: entries are immutable
        while migrated, so the sums maintained by migrate/demote are the
        exact walk result. The walk survives only for the (engine-unused)
        case where an earlier entry already measured one of our groups.
        """
        if seen is None:
            return self._accum_bytes + self._group_bytes
        if seen.isdisjoint(self._group_ids):
            seen |= self._group_ids
            return self._accum_bytes + self._group_bytes
        nbytes = 0
        for entry in self.entries.values():
            nbytes += 48 + entry.accum.estimated_bytes()
            group = entry.group
            if id(group) in seen:
                continue
            seen.add(id(group))
            nbytes += _group_nbytes(group)
        return nbytes


def demote_restored_rollups(registry: object) -> int:
    """Invalidate every rollup entry after a checkpoint restore.

    Recovery replay past a migration point must not trust migrated
    values: the replayed batches are refolded conservatively, and any
    group could be touched by them. This sweep walks the restored
    registry, folds every rollup entry's sums back into its operator's
    sketch, and clears the quiescence clocks of the demoted keys so they
    must re-quiesce before migrating again. Returns the demoted count.

    Called from :meth:`repro.state.checkpoints.CheckpointManager.restore`
    (and the baseline branch of the controller's ``_replay``), keeping
    the invalidation in the restore path itself rather than trusting
    every operator to notice it is replaying.
    """
    demoted = 0
    namespaces = getattr(registry, "namespaces", None)
    if namespaces is None:
        return 0
    for namespace in list(namespaces()):
        store = registry.get(namespace)  # type: ignore[attr-defined]
        if store is None:
            continue
        rollup = store.get("rollup")
        if not isinstance(rollup, ResolvedRollupStore) or not len(rollup):
            continue
        sketch = store.get("sketch")
        if sketch is None:
            continue
        rows = rollup.demote_all()
        sketch.reinsert_groups(rows)
        tracker = store.get("quiesce")
        if tracker is not None:
            tracker.forget(rows)
        # The demotion mutated entries in place; bump the store's write
        # clock so the byte-accounting memo re-measures.
        store.put("rollup", rollup)
        store.put("sketch", sketch)
        demoted += len(rows)
    return demoted
