"""Exception hierarchy for the iOLAP reproduction.

Every error raised by the library derives from :class:`ReproError`, so
applications can catch a single base class. Sub-classes mirror the
subsystems: schema/typing problems, SQL front-end problems, unsupported
online-query shapes, and variation-range integrity failures (which are
normally handled internally by the query controller's recovery path, but
are also part of the public API for users driving the engine manually).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


class SchemaError(ReproError):
    """A relation, row, or expression does not match the declared schema."""


class ExpressionError(ReproError):
    """An expression is malformed or applied to incompatible operands."""


class PlanError(ReproError):
    """A logical plan is structurally invalid (schema mismatch, bad keys...)."""


class SQLError(ReproError):
    """The SQL front-end could not lex, parse, or plan a statement."""


class UnsupportedQueryError(ReproError):
    """The query falls outside the class supported by the online engine.

    Mirrors the paper's Section 3.3: positive relational algebra only, no
    approximate join/group-by keys under sampling, and aggregate functions
    must be Hadamard differentiable (so MIN/MAX are rejected online even
    though the batch evaluator supports them).

    Rejection sites pass the offending plan node so callers (and the
    ``repro.analysis`` typechecker) can point at the exact plan location.
    """

    def __init__(self, message: str, node: object = None):
        super().__init__(message)
        #: The plan node the rejection is about, when known.
        self.node = node


class RangeIntegrityError(ReproError):
    """A variation-range integrity check failed (Section 5.1).

    Raised by :class:`repro.core.ranges.RangeMonitor` when a new batch's
    bootstrap outputs escape the previously published variation range. The
    query controller catches this and replays from the last consistent
    batch; it only propagates to users running operators by hand.
    """

    def __init__(self, message: str, recover_from_batch: int = 0):
        super().__init__(message)
        #: Last batch index whose resolved pruning decisions all still hold
        #: for the current estimates (0 = none do). The controller restores
        #: the newest state checkpoint taken at or before this batch and
        #: replays only the batches after it.
        self.recover_from_batch = recover_from_batch


class TransientUnitError(ReproError):
    """A retryable failure inside one execution unit.

    Raised before the unit body runs (fault injection, and the seam for
    future transient backends), so re-running the unit is side-effect
    safe. Executors retry errors carrying ``transient = True`` up to
    ``OnlineConfig.unit_retry_attempts`` times with exponential backoff;
    anything else propagates immediately.
    """

    #: Marks the error as safe to retry at the executor level.
    transient = True


class CatalogError(ReproError):
    """A referenced table is missing from the catalog."""


class ContractViolationError(ReproError):
    """A runtime engine-contract check failed (``--verify`` mode).

    Raised by :class:`repro.analysis.verify.ContractVerifier` when an
    operator breaks a contract the executor relies on: mutating its input
    :class:`~repro.core.operators.DeltaBatch` or the installed streamed
    delta, growing state entries outside its declared
    :class:`~repro.state.StateStore` names, or two threads of one
    ParallelExecutor wave touching the same store entry.
    """


class SanitizerViolationError(ReproError):
    """The runtime buffer sanitizer caught an aliasing race (``--sanitize``).

    Raised by :class:`repro.analysis.sanitize.BufferSanitizer` when an
    operator writes in place into a frozen zero-copy buffer (``SAN001``),
    a read-only memmapped :class:`~repro.storage.DiskTable` chunk
    (``SAN002``), or when one base buffer is write-claimed from two
    threads within a single batch (``SAN003``). Carries the rule id, the
    writing operator's label, and the buffer's original owner(s).
    """

    def __init__(
        self, rule_id: str, writer: str, owners: list[str], message: str
    ) -> None:
        super().__init__(message)
        self.rule_id = rule_id
        self.writer = writer
        self.owners = owners
