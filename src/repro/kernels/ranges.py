"""Batched variation-range estimation for block publishing.

``AggregateOp._publish`` calls ``RangeMonitor.observe`` once per
``(group, spec)`` cell, and each call pays a fresh ``np.min``/``np.max``/
``np.std`` over a T-element trial vector — for a few hundred groups the
NumPy call overhead dwarfs the arithmetic. :func:`batched_range_bounds`
computes the same bounds for a whole column of groups at once by stacking
the trial vectors into a ``(G, T)`` matrix and reducing along axis 1.

Bit-identity contract: for every row the results equal
``VariationRange.from_trials(trials[g], slack)`` hulled with a finite
``points[g]``, exactly as ``RangeMonitor.observe`` produces them.
Axis-1 reductions over a C-contiguous matrix use the same pairwise
summation as the equivalent 1-D calls, so ``min``/``max``/``std`` agree
to the last bit; rows containing non-finite trials (where the reference
filters before reducing) take a per-row fallback that mirrors
``from_trials`` literally.
"""

from __future__ import annotations

import numpy as np

_INF = float("inf")


def batched_range_bounds(
    points: np.ndarray, trials: np.ndarray, slack: float
) -> tuple[np.ndarray, np.ndarray]:
    """Per-row ``[lo, hi]`` bounds for a ``(G, T)`` matrix of trial vectors.

    Returns ``(lo, hi)`` arrays of shape ``(G,)``. Row semantics match
    ``VariationRange.from_trials`` followed by the hull with the row's
    point estimate when that point is finite:

    * no finite trials -> ``(-inf, inf)``
    * all-identical trials with zero spread -> padded by ``|v| + 1``
    * otherwise ``[min - slack*std, max + slack*std]``
    """
    pts = np.asarray(points, dtype=np.float64)
    t = np.asarray(trials, dtype=np.float64)
    g = t.shape[0]
    lo = np.full(g, -_INF)
    hi = np.full(g, _INF)
    if t.shape[1]:
        finite = np.isfinite(t)
        ok = finite.all(axis=1)
        if ok.any():
            sub = t[ok] if not ok.all() else np.ascontiguousarray(t)
            sub_lo = sub.min(axis=1)
            sub_hi = sub.max(axis=1)
            spread = np.std(sub, axis=1) * slack
            degenerate = (sub_hi - sub_lo == 0.0) & (spread == 0.0)
            pad = np.where(degenerate, np.abs(sub_hi) + 1.0, spread)
            lo[ok] = sub_lo - pad
            hi[ok] = sub_hi + pad
        # Rows with NaN/inf trials are rare (empty-weight AVG cells); run
        # them through the scalar formula so the finite-filtering — and
        # therefore the std over the *cleaned* vector — matches exactly.
        for i in np.flatnonzero(~ok):
            clean = t[i][finite[i]]
            if len(clean) == 0:
                continue
            row_lo, row_hi = float(clean.min()), float(clean.max())
            spread_i = float(np.std(clean)) * slack
            if row_hi - row_lo == 0.0 and spread_i == 0.0:
                pad_i = abs(row_hi) + 1.0
                lo[i], hi[i] = row_lo - pad_i, row_hi + pad_i
            else:
                lo[i], hi[i] = row_lo - spread_i, row_hi + spread_i
    hull = np.isfinite(pts)
    if hull.any():
        lo[hull] = np.minimum(lo[hull], pts[hull])
        hi[hull] = np.maximum(hi[hull], pts[hull])
    return lo, hi
