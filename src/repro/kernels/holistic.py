"""Sort-based grouped reductions for the holistic aggregate path.

The online AGGREGATE recomputes non-decomposable aggregates per group per
bootstrap trial each batch — the reference loops ``for j in range(T)``
over ``compute(values[ix], trial_w[ix, j])`` for every group. For
selection-based aggregates (quantiles), one stable sort of the group's
values plus a cumulative sum over the whole ``(n, T)`` trial-weight
matrix answers all trials at once.

Bit-identity note: :func:`weighted_quantile` and
:func:`weighted_quantile_trials` share the same formulation — the chosen
element index is ``count(cumsum(w) < q·total)`` over stably-sorted values
— so the per-trial vector equals the scalar function applied per trial
column exactly, down to float accumulation order (``total`` is the last
cumulative sum, not a separate ``sum()``, because NumPy's pairwise
``sum`` may differ from ``cumsum`` in the last bits).
"""

from __future__ import annotations

import numpy as np


def grouped_indices(codes: np.ndarray, num_groups: int) -> list[np.ndarray]:
    """Row indices per group id, each ascending.

    Equivalent to the reference's ``by_group`` dict of row-index lists
    when ``codes`` follow first-appearance order: iterating group ids
    ``0..G-1`` visits groups in dict insertion order, and the stable sort
    keeps every group's rows ascending.
    """
    if num_groups == 0:
        return []
    order = np.argsort(codes, kind="stable")
    counts = np.bincount(codes, minlength=num_groups)
    return np.split(order, np.cumsum(counts[:-1]))


def weighted_quantile(values: np.ndarray, weights: np.ndarray, q: float) -> float:
    """Weighted q-quantile: smallest value whose cumulative weight
    reaches ``q`` times the total weight."""
    v = np.asarray(values, dtype=np.float64)
    if len(v) == 0:
        return float("nan")
    w = np.asarray(weights, dtype=np.float64)
    order = np.argsort(v, kind="stable")
    cum = np.cumsum(w[order])
    total = cum[-1]
    if not total > 0.0:
        return float("nan")
    idx = int(np.count_nonzero(cum < q * total))
    return float(v[order[min(idx, len(v) - 1)]])


def weighted_quantile_trials(
    values: np.ndarray, trial_weights: np.ndarray, q: float
) -> np.ndarray:
    """Per-trial weighted q-quantiles: (T,) — one sort for all trials."""
    v = np.asarray(values, dtype=np.float64)
    t = trial_weights.shape[1]
    if len(v) == 0:
        return np.full(t, np.nan)
    order = np.argsort(v, kind="stable")
    vs = v[order]
    cum = np.cumsum(np.asarray(trial_weights, dtype=np.float64)[order], axis=0)
    totals = cum[-1]
    idx = np.minimum((cum < q * totals[None, :]).sum(axis=0), len(vs) - 1)
    out = vs[idx]
    out = np.where(totals > 0.0, out, np.nan)
    return out
