"""Batched lineage resolution and array-wide interval arithmetic.

The reference classifier (``repro.core.classify``) evaluates a
comparison side row by row: resolve the row's lineage cells, run
``UncertainValue`` arithmetic, copy ``lo/hi/point/trials`` out. Lineage
columns repeat a handful of distinct cell objects (one per side group),
so the kernel factorizes each column by cell identity, resolves every
*distinct* cell exactly once, and assembles the per-row arrays with
gathers. Arithmetic then runs array-wide: elementwise ufuncs for points
and trials (bit-identical to the per-row NumPy-scalar ops) and interval
arithmetic mirroring :class:`~repro.core.values.VariationRange` for the
bounds.

:func:`try_evaluate_side` returns ``None`` for expression shapes the
kernel does not cover (non-arithmetic nodes, ``%``, non-numeric
literals); the caller falls back to the row-wise reference, keeping the
fast path an optimization rather than a semantics fork.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.values import LineageRef, UncertainValue
from repro.kernels.codec import factorize_cells
from repro.relational.expressions import Arith, Col, Expression, Literal

_INF = float("inf")


class UnsupportedKernel(Exception):
    """Raised internally when an expression needs the row-wise path."""


@dataclass
class _Node:
    """Evaluated subtree: bounds/point may be arrays or Python scalars;
    ``trials`` of None means "equal to point in every trial"."""

    lo: object
    hi: object
    point: object
    trials: np.ndarray | None
    pending: np.ndarray | None
    #: (cell codes, sources-per-distinct-cell) of every uncertain column
    #: under this subtree, for provenance (``SideValues.refs``).
    ref_entries: list = field(default_factory=list)


def try_evaluate_side(
    expr: Expression,
    rel,
    uncertain_cols: set[str],
    ctx,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray, set] | None:
    """Vectorized ``evaluate_side`` payload, or ``None`` to fall back.

    Returns ``(lo, hi, point, trials, pending, refs)`` with the exact
    values the row-wise reference computes (pending rows NaN-filled).
    """
    n = len(rel)
    try:
        node = _eval(expr, rel, uncertain_cols, ctx, n)
    except UnsupportedKernel:
        return None
    lo = np.asarray(node.lo, dtype=np.float64)
    hi = np.asarray(node.hi, dtype=np.float64)
    point = np.asarray(node.point, dtype=np.float64)
    pending = (
        node.pending if node.pending is not None else np.zeros(n, dtype=bool)
    )
    trials = node.trials
    if trials is None:
        trials = np.broadcast_to(point[:, None], (n, ctx.num_trials))
    if pending.any():
        lo, hi, point = lo.copy(), hi.copy(), point.copy()
        trials = np.array(trials, dtype=np.float64)
        lo[pending] = hi[pending] = point[pending] = np.nan
        trials[pending] = np.nan
    return lo, hi, point, trials, pending, _collect_refs(node, pending)


def resolve_column(
    column: np.ndarray, n: int, ctx, lineage=None
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray, set]:
    """Vectorized fast path for a bare uncertain column of refs/values.

    ``lineage`` may be the column's structured
    :class:`~repro.storage.lineage.LineageColumn` sidecar; when present
    the distinct cells come straight from its int32 slots instead of an
    identity sweep over the objects.
    """
    node = _resolve_column_node(column, n, ctx, lineage)
    pending = node.pending
    assert pending is not None and node.trials is not None
    refs = _collect_refs(node, pending)
    return node.lo, node.hi, node.point, node.trials, pending, refs  # type: ignore[return-value]


def _collect_refs(node: _Node, pending: np.ndarray) -> set:
    """Sources of every uncertain cell that reaches a non-pending row —
    the reference skips rows it cannot evaluate, so pending-only cells
    must not contribute."""
    refs: set = set()
    mask = ~pending
    for codes, sources_per_cell in node.ref_entries:
        for u in np.unique(codes[mask]):
            refs.update(sources_per_cell[u])
    return refs


# -- evaluation --------------------------------------------------------------------


def _eval(expr, rel, uncertain_cols: set[str], ctx, n: int) -> _Node:
    if isinstance(expr, Literal):
        v = expr.value
        if not isinstance(v, (int, float, np.integer, np.floating)):
            raise UnsupportedKernel(f"non-numeric literal {v!r}")
        return _Node(v, v, v, None, None)
    if isinstance(expr, Col):
        values = rel.columns[expr.name]
        if expr.name in uncertain_cols:
            return _resolve_column_node(values, n, ctx, rel.lineage.get(expr.name))
        if values.dtype == object:
            raise UnsupportedKernel(f"object column {expr.name!r}")
        return _Node(values, values, values, None, None)
    if isinstance(expr, Arith) and expr.op in ("+", "-", "*", "/"):
        a = _eval(expr.left, rel, uncertain_cols, ctx, n)
        b = _eval(expr.right, rel, uncertain_cols, ctx, n)
        return _combine(expr.op, a, b)
    raise UnsupportedKernel(f"cannot vectorize {type(expr).__name__}")


def _resolve_column_node(column: np.ndarray, n: int, ctx, lineage=None) -> _Node:
    """Resolve each *distinct* cell once, then gather per row.

    With a structured lineage sidecar the distinct-cell factorization is
    a pure int32 ``np.unique`` over slot indices (the pool holds one
    distinct object per slot, so slot-distinctness equals the identity
    factorization); mixed or sidecar-less columns fall back to the
    ``id()`` sweep.
    """
    fact = None
    if lineage is not None and len(lineage) == n:
        fact = lineage.factorized()
    if fact is None:
        fact = factorize_cells(np.asarray(column, dtype=object))
    codes, cells = fact
    u = len(cells)
    t = ctx.num_trials
    u_lo = np.empty(u)
    u_hi = np.empty(u)
    u_point = np.empty(u)
    u_trials = np.empty((u, t))
    u_pending = np.zeros(u, dtype=bool)
    sources_per_cell: list[tuple] = [()] * u
    for j in range(u):
        cell = cells[j]
        value = ctx.resolve(cell) if isinstance(cell, LineageRef) else cell
        if value is None:
            u_pending[j] = True
            u_lo[j] = u_hi[j] = u_point[j] = np.nan
            u_trials[j] = np.nan
        elif isinstance(value, UncertainValue):
            u_lo[j], u_hi[j] = value.vrange.lo, value.vrange.hi
            u_point[j] = value.value
            u_trials[j] = value.trials
            sources_per_cell[j] = value.sources
        else:
            u_lo[j] = u_hi[j] = u_point[j] = float(value)  # type: ignore[arg-type]
            u_trials[j] = float(value)  # type: ignore[arg-type]
    return _Node(
        u_lo[codes],
        u_hi[codes],
        u_point[codes],
        u_trials[codes],
        u_pending[codes],
        [(codes, sources_per_cell)],
    )


# -- interval / trial arithmetic ---------------------------------------------------


def _trials_view(node: _Node):
    """Operand's (n, T)-broadcastable trial values."""
    if node.trials is not None:
        return node.trials
    point = node.point
    return point[:, None] if isinstance(point, np.ndarray) else point


def _merge_pending(a: _Node, b: _Node) -> np.ndarray | None:
    if a.pending is None:
        return b.pending
    if b.pending is None:
        return a.pending
    return a.pending | b.pending


def _combine(op: str, a: _Node, b: _Node) -> _Node:
    trials = None
    if a.trials is not None or b.trials is not None:
        ta, tb = _trials_view(a), _trials_view(b)
    pending = _merge_pending(a, b)
    with np.errstate(divide="ignore", invalid="ignore"):
        if op == "+":
            lo, hi = a.lo + b.lo, a.hi + b.hi
            point = a.point + b.point
            if a.trials is not None or b.trials is not None:
                trials = ta + tb
        elif op == "-":
            lo, hi = a.lo - b.hi, a.hi - b.lo
            point = a.point - b.point
            if a.trials is not None or b.trials is not None:
                trials = ta - tb
        elif op == "*":
            lo, hi = _interval_mul(a.lo, a.hi, b.lo, b.hi)
            point = a.point * b.point
            if a.trials is not None or b.trials is not None:
                trials = ta * tb
        else:  # "/"
            # Denominator interval crossing zero -> unbounded quotient,
            # mirroring VariationRange.__truediv__.
            cross = np.asarray(b.lo <= 0.0) & np.asarray(np.asarray(b.hi) >= 0.0)
            inv_lo, inv_hi = 1.0 / np.asarray(b.hi, dtype=np.float64), 1.0 / np.asarray(
                b.lo, dtype=np.float64
            )
            lo, hi = _interval_mul(a.lo, a.hi, inv_lo, inv_hi)
            lo = np.where(cross, -_INF, lo)
            hi = np.where(cross, _INF, hi)
            point = a.point / b.point
            if a.trials is not None or b.trials is not None:
                trials = ta / tb
    return _Node(lo, hi, point, trials, pending, a.ref_entries + b.ref_entries)


def _interval_mul(alo, ahi, blo, bhi):
    """[lo, hi] of the product interval — NaN products (0·inf) ignored,
    matching the reference's NaN-filtered min/max."""
    with np.errstate(invalid="ignore"):
        p1, p2, p3, p4 = alo * blo, alo * bhi, ahi * blo, ahi * bhi
        lo = np.fmin(np.fmin(p1, p2), np.fmin(p3, p4))
        hi = np.fmax(np.fmax(p1, p2), np.fmax(p3, p4))
    return lo, hi
