"""Key codec: factorize key columns into dense integer codes.

The row-wise engine identifies groups by Python tuples
(:meth:`Relation.key_tuples`) and probes dictionaries per row. The codec
replaces that with ``np.unique``-based factorization: each distinct key
gets a dense integer code in *first-appearance order* (the same order the
dict-based reference assigns group ids), and per-row work collapses into
array gathers. Codes are memoized per relation — relations are
immutable-by-convention, so a relation's key codes never change — which
is what makes re-examining a non-deterministic store every batch cheap.

Equality contract with the reference: key tuples are built from
``.tolist()`` scalars (plain Python values), exactly like
``Relation.key_tuples``, so codec keys hash/compare interchangeably with
reference keys. Inputs the vectorized path cannot factorize faithfully
fall back to the dict reference inside :func:`factorize_arrays`:

* float key columns containing NaN — ``np.unique`` collapses NaNs while
  dict keys treat every NaN object as distinct;
* object columns with unhashable values.

Object/string columns never go through ``np.unique`` at all: sorting an
object array compares elements in Python, which is both slower than a
dict sweep and wrong for unordered or NaN-bearing cells, so those columns
factorize through a per-column dict (identical semantics to the
reference's tuple keys, which also hash the cell objects).

This module depends only on NumPy so both ``repro.relational`` and the
online operators may import it without cycles.
"""

from __future__ import annotations

import threading
import weakref
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.kernels.stats import STATS


@dataclass
class KeyCodes:
    """Dense key codes of one relation for one key-column list.

    ``codes[i]`` is the id of row ``i``'s key; ``keys[g]`` the Python
    key tuple of id ``g``. Ids follow first appearance order.
    """

    codes: np.ndarray  # (n,) intp
    keys: list[tuple]

    @property
    def num_keys(self) -> int:
        return len(self.keys)


def _first_appearance_order(inverse: np.ndarray, num_uniques: int, n: int):
    """Rank sorted-unique ids into first-appearance ids.

    Returns ``(order, rank)``: ``order[g]`` is the sorted-unique index of
    the ``g``-th key to appear, ``rank`` the inverse permutation.
    """
    first_pos = np.full(num_uniques, n, dtype=np.intp)
    np.minimum.at(first_pos, inverse, np.arange(n, dtype=np.intp))
    order = np.argsort(first_pos, kind="stable")
    rank = np.empty_like(order)
    rank[order] = np.arange(num_uniques, dtype=np.intp)
    return order, rank


def _dict_factorize_column(arr: np.ndarray) -> np.ndarray:
    """First-appearance codes of one object column via a dict sweep.

    Matches the reference's key semantics exactly — cells are compared
    the way tuple keys compare them (hash + equality, with the identity
    shortcut that keeps each NaN object its own key). Raises ``TypeError``
    for unhashable cells (the caller then falls back to the row-wise
    reference, which would raise identically).
    """
    mapping: dict = {}
    codes = np.empty(len(arr), dtype=np.intp)
    missing = object()  # None is a legal cell value
    next_code = 0
    for i, value in enumerate(arr.tolist()):
        code = mapping.get(value, missing)
        if code is missing:
            code = next_code
            mapping[value] = next_code
            next_code += 1
        codes[i] = code
    return codes


def factorize_arrays(
    arrays: Sequence[np.ndarray],
    n: int,
    column_codes: Sequence[np.ndarray | None] | None = None,
) -> tuple[np.ndarray, np.ndarray] | None:
    """Factorize parallel key arrays into first-appearance codes.

    Returns ``(codes, first_rows)`` where ``first_rows[g]`` is the row at
    which key ``g`` first occurs, or ``None`` when the input needs the
    dict fallback (NaN float keys, unhashable objects).

    ``column_codes`` optionally injects storage-carried dictionary codes
    (``EncodedColumn.codes``) per column: a dictionary page assigns codes
    with exactly the dict-sweep semantics below (distinct code ↔ distinct
    value), so the column's hash sweep collapses into one integer
    ``np.unique`` — this is how encoded key columns skip re-hashing
    Python objects on every hop.
    """
    if not arrays:
        return np.zeros(n, dtype=np.intp), np.zeros(min(n, 1), dtype=np.intp)
    codes: np.ndarray | None = None
    for pos, arr in enumerate(arrays):
        pre = column_codes[pos] if column_codes is not None else None
        if pre is not None:
            STATS.inc("codec_encoded_cols")
            _, inv = np.unique(pre, return_inverse=True)
        elif arr.dtype.kind == "O":
            try:
                inv = _dict_factorize_column(arr)
            except TypeError:
                return None
        else:
            if arr.dtype.kind == "f" and len(arr) and np.isnan(arr).any():
                return None
            _, inv = np.unique(arr, return_inverse=True)
        inv = inv.reshape(n).astype(np.intp, copy=False)
        if codes is None:
            codes = inv
        else:
            # Pairwise mixed-radix combine, re-compacted immediately so
            # intermediate codes stay < n² (no overflow risk).
            radix = int(inv.max()) + 1 if n else 1
            combined = codes * radix + inv
            _, codes = np.unique(combined, return_inverse=True)
            codes = codes.reshape(n).astype(np.intp, copy=False)
    assert codes is not None
    num = int(codes.max()) + 1 if n else 0
    order, rank = _first_appearance_order(codes, num, n)
    first_pos = np.full(num, n, dtype=np.intp)
    np.minimum.at(first_pos, codes, np.arange(n, dtype=np.intp))
    return rank[codes], first_pos[order]


def _carried_codes(rel, names: Sequence[str]) -> list[np.ndarray | None] | None:
    """Storage-carried dictionary codes for each key column (or ``None``)."""
    encodings = getattr(rel, "encodings", None)
    if not encodings:
        return None
    out = [
        encodings[name].codes if name in encodings else None for name in names
    ]
    return out if any(c is not None for c in out) else None


def _factorize_relation(rel, names: Sequence[str]) -> KeyCodes:
    n = len(rel)
    if not names:
        # The scalar-aggregate key: one empty tuple, but only when rows
        # exist (the reference derives keys from rows, so zero rows give
        # zero keys).
        return KeyCodes(np.zeros(n, dtype=np.intp), [()] if n else [])
    arrays = [rel.columns[name] for name in names]
    result = factorize_arrays(arrays, n, _carried_codes(rel, names))
    if result is None:
        # Dict fallback: bit-identical to the reference by construction.
        mapping: dict[tuple, int] = {}
        codes = np.empty(n, dtype=np.intp)
        keys: list[tuple] = []
        for i, key in enumerate(rel.key_tuples(list(names))):
            gid = mapping.get(key)
            if gid is None:
                gid = len(keys)
                mapping[key] = gid
                keys.append(key)
            codes[i] = gid
        return KeyCodes(codes, keys)
    codes, first_rows = result
    keys = list(zip(*(a[first_rows].tolist() for a in arrays)))
    return KeyCodes(codes, keys)


#: rel -> {key-column tuple -> KeyCodes}. Weak keys: codes die with the
#: relation. Lock-guarded for the parallel executor (a lost race rebuilds
#: once and keeps a single entry).
_CACHE: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()
_LOCK = threading.Lock()


def factorize_keys(rel, names: Sequence[str]) -> KeyCodes:
    """Memoized key codes of ``rel`` over key columns ``names``."""
    cache_key = tuple(names)
    with _LOCK:
        per_rel = _CACHE.get(rel)
        entry = None if per_rel is None else per_rel.get(cache_key)
    if entry is not None:
        STATS.inc("codec_hits")
        return entry
    STATS.inc("codec_misses")
    kc = _factorize_relation(rel, names)
    with _LOCK:
        _CACHE.setdefault(rel, {}).setdefault(cache_key, kc)
    return kc


def recode_subset(kc: KeyCodes, mask: np.ndarray) -> tuple[list[tuple], np.ndarray]:
    """Re-factorize the rows selected by ``mask``.

    The reference assigns group ids by first appearance *among the kept
    rows*, which generally differs from the full relation's order; this
    re-derives that order from the existing codes without touching key
    values again. Returns ``(keys, codes)`` over the masked rows.
    """
    sub = kc.codes[mask]
    m = len(sub)
    if m == 0:
        return [], np.empty(0, dtype=np.intp)
    uniq, inv = np.unique(sub, return_inverse=True)
    inv = inv.reshape(m).astype(np.intp, copy=False)
    order, rank = _first_appearance_order(inv, len(uniq), m)
    keys = [kc.keys[g] for g in uniq[order]]
    return keys, rank[inv]


def factorize_cells(column: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Factorize an object column by cell *identity*.

    Lineage-bearing columns repeat a handful of cell objects (one
    ``LineageRef``/``UncertainValue`` per group) across thousands of rows;
    resolving each distinct object once and gathering is the whole win.
    Returns ``(codes, cells)``: ``cells[codes[i]] is column[i]``.
    """
    n = len(column)
    if n == 0:
        return np.empty(0, dtype=np.intp), column
    ids = np.frompyfunc(id, 1, 1)(column).astype(np.int64)
    _, inv = np.unique(ids, return_inverse=True)
    inv = inv.reshape(n).astype(np.intp, copy=False)
    num = int(inv.max()) + 1
    first_pos = np.full(num, n, dtype=np.intp)
    np.minimum.at(first_pos, inv, np.arange(n, dtype=np.intp))
    return inv, column[first_pos]
