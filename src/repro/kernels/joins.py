"""Vectorized hash equi-join with a reusable (cross-batch) side index.

``join_relations`` rebuilds a Python dict over the right side and walks
the left side row by row, every batch. The kernel version factorizes both
sides' keys (memoized per relation), sorts the right side's codes once
into a :class:`SideIndex`, and derives the joined row pairs with pure
array arithmetic. The static join caches the index of its (immutable)
dimension side in its state store, so batches after the first skip the
build entirely.

Output contract: *bit-identical* to ``join_relations`` — left-major
order, matches of one left row ordered by ascending right row (the
stable sort reproduces the reference dict's insertion order), identical
schema/column assembly, multiplicities, and trial multiplicities.
"""

from __future__ import annotations

import numpy as np

from repro.kernels.codec import factorize_keys
from repro.relational.evaluator import _join_trials, join_relations
from repro.relational.relation import Relation
from repro.relational.schema import Schema


class SideIndex:
    """Sorted-code index over one relation's join-key columns."""

    def __init__(self, rel: Relation, key_cols: list[str]):
        kc = factorize_keys(rel, key_cols)
        self.key_cols = list(key_cols)
        #: Row order grouped by key code; stable sort keeps rows of one
        #: key in ascending row order (the reference's match order).
        self.order = np.argsort(kc.codes, kind="stable")
        self.counts = np.bincount(kc.codes, minlength=kc.num_keys).astype(np.intp)
        self.starts = np.concatenate(
            [np.zeros(1, dtype=np.intp), np.cumsum(self.counts[:-1], dtype=np.intp)]
        ) if kc.num_keys else np.empty(0, dtype=np.intp)
        self.key_to_code: dict[tuple, int] = {
            key: code for code, key in enumerate(kc.keys)
        }

    def estimated_bytes(self) -> int:
        return (
            self.order.nbytes
            + self.counts.nbytes
            + self.starts.nbytes
            + 64 * len(self.key_to_code)
        )


def vectorized_join(
    left: Relation,
    right: Relation,
    keys: list[tuple[str, str]],
    right_index: SideIndex | None = None,
) -> Relation:
    """Equi-join, bit-identical to ``join_relations``.

    ``right_index`` may be a prebuilt :class:`SideIndex` over ``right``'s
    key columns (the cross-batch cache); otherwise one is built here.
    """
    if not keys:
        return join_relations(left, right, keys)
    lkeys = [lk for lk, _ in keys]
    rkeys = [rk for _, rk in keys]
    index = right_index if right_index is not None else SideIndex(right, rkeys)

    if len(left) == 0 or len(index.counts) == 0:
        li = np.empty(0, dtype=np.intp)
        ri = np.empty(0, dtype=np.intp)
    else:
        lkc = factorize_keys(left, lkeys)
        key_to_code = index.key_to_code
        code_of_key = np.fromiter(
            (key_to_code.get(k, -1) for k in lkc.keys),
            dtype=np.intp,
            count=lkc.num_keys,
        )
        slots = code_of_key[lkc.codes]
        present = slots >= 0
        safe = np.where(present, slots, 0)
        cnt = np.where(present, index.counts[safe], 0)

        total = int(cnt.sum())
        li = np.repeat(np.arange(len(left), dtype=np.intp), cnt)
        row_start = np.concatenate([np.zeros(1, dtype=np.intp), np.cumsum(cnt)])[:-1]
        within = np.arange(total, dtype=np.intp) - np.repeat(row_start, cnt)
        ri = index.order[np.repeat(index.starts[safe], cnt) + within]

    drop = set(rkeys)
    kept_right = [c for c in right.schema if c.name not in drop]
    schema = Schema(list(left.schema.columns) + kept_right)
    cols: dict[str, np.ndarray] = {}
    encodings: dict = {}
    lineage: dict = {}
    for c in left.schema:
        cols[c.name] = left.columns[c.name][li]
        _gather_sidecars(left, c.name, li, encodings, lineage)
    for c in kept_right:
        cols[c.name] = right.columns[c.name][ri]
        _gather_sidecars(right, c.name, ri, encodings, lineage)
    mult = left.mult[li] * right.mult[ri]
    trials = _join_trials(left, right, li, ri)
    return Relation._from_parts(
        schema,
        cols,
        mult,
        trials,
        encodings=encodings or None,
        lineage=lineage or None,
    )


def _gather_sidecars(
    side: Relation, name: str, rows: np.ndarray, encodings: dict, lineage: dict
) -> None:
    """Carry a column's storage sidecars through the join row gather."""
    enc = side.encodings.get(name)
    if enc is not None:
        encodings[name] = enc.take(rows)
    lin = side.lineage.get(name)
    if lin is not None:
        lineage[name] = lin.take(rows)
