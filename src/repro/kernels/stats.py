"""Kernel cache counters, surfaced through the obs metrics registry.

The counters answer the "where does the time go" question for the
vectorized hot paths: how often the per-relation key codec and the
per-block-output group tables were rebuilt versus reused, and whether the
static join's dimension index was actually cached across batches. The
controller samples :func:`snapshot` into gauges once per batch, so
``iolap report`` shows them next to the operator timings.

Counters are process-global (the caches they describe are too) and
monotonic; :func:`reset` exists for tests and benchmark harnesses.
"""

from __future__ import annotations

import threading


class KernelStats:
    """Thread-safe hit/miss counters for the kernel-layer caches."""

    _FIELDS = (
        "codec_hits",
        "codec_misses",
        "codec_encoded_cols",
        "view_table_hits",
        "view_table_misses",
        "side_index_hits",
        "side_index_misses",
    )

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counts = {name: 0 for name in self._FIELDS}

    def inc(self, name: str, by: int = 1) -> None:
        with self._lock:
            self._counts[name] += by

    def snapshot(self) -> dict[str, int]:
        with self._lock:
            return dict(self._counts)

    def reset(self) -> None:
        with self._lock:
            for name in self._counts:
                self._counts[name] = 0


#: Process-global counters; the kernel caches below feed these.
STATS = KernelStats()
