"""Code-indexed lookup tables over published block outputs.

The uncertain join probes ``BlockOutput.get(key)`` once per stream row
and then reads per-group attributes (membership status, point decision,
per-trial existence, attached column values). A :class:`GroupTable`
flattens one block output into parallel arrays so those reads become
gathers: one dict probe per *distinct* key, then pure NumPy.

Tables are memoized per ``BlockOutput`` instance. The aggregate operator
publishes a *fresh* ``BlockOutput`` object every batch, so republishing
invalidates the cache structurally — stale tables are simply unreachable
and garbage-collected with their output (weak keys).
"""

from __future__ import annotations

import threading
import weakref

import numpy as np

from repro.kernels.stats import STATS

#: Membership/classification codes, value-aligned with
#: ``repro.core.classify`` (asserted in tests) — not imported from there
#: to keep this package's import edges pointing strictly downward.
TRUE, FALSE, UNKNOWN, PENDING = np.int8(1), np.int8(0), np.int8(2), np.int8(3)


class GroupTable:
    """Columnar view of one ``BlockOutput``'s groups."""

    def __init__(self, view) -> None:
        groups = list(view.groups.values())
        self.groups = groups
        self.slots: dict[tuple, int] = {
            g.key: slot for slot, g in enumerate(groups)
        }
        g = len(groups)
        self.status = np.empty(g, dtype=np.int8)
        self.member_point = np.empty(g, dtype=bool)
        for slot, group in enumerate(groups):
            if group.certainly_in:
                self.status[slot] = TRUE
            elif group.certainly_out:
                self.status[slot] = FALSE
            else:
                self.status[slot] = UNKNOWN
            self.member_point[slot] = group.member_point
        self._exist: np.ndarray | None = None
        self._pools: dict[tuple, np.ndarray] = {}
        self._lock = threading.Lock()

    def probe(self, keys: list[tuple]) -> np.ndarray:
        """Slot per key; ``-1`` where the key has not been published."""
        slots = self.slots
        return np.fromiter(
            (slots.get(k, -1) for k in keys), dtype=np.intp, count=len(keys)
        )

    def exist_matrix(self, num_trials: int) -> np.ndarray:
        """(G, T) per-trial existence, built once per table."""
        with self._lock:
            if self._exist is None or self._exist.shape[1] != num_trials:
                mat = np.empty((len(self.groups), num_trials), dtype=bool)
                for slot, group in enumerate(self.groups):
                    mat[slot] = group.exist_in_trial(num_trials)
                self._exist = mat
            return self._exist

    def value_pool(self, name: str, dtype: np.dtype) -> np.ndarray:
        """(G,) array of each group's deterministic value of ``name``."""
        key = ("value", name, str(dtype))
        with self._lock:
            pool = self._pools.get(key)
            if pool is None:
                pool = np.empty(len(self.groups), dtype=dtype)
                for slot, group in enumerate(self.groups):
                    pool[slot] = group.values[name]
                self._pools[key] = pool
            return pool

    def ref_pool(self, side_id: int, name: str, make_ref) -> np.ndarray:
        """(G,) object array of lineage refs into column ``name``.

        ``make_ref(side_id, key, name)`` builds one ref per group; refs
        compare by value, so sharing one instance across the rows of a
        group is indistinguishable from the reference's per-row objects.
        """
        key = ("ref", side_id, name)
        with self._lock:
            pool = self._pools.get(key)
            if pool is None:
                pool = np.empty(len(self.groups), dtype=object)
                for slot, group in enumerate(self.groups):
                    pool[slot] = make_ref(side_id, group.key, name)
                self._pools[key] = pool
            return pool


_CACHE: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()
_LOCK = threading.Lock()


def group_table(view) -> GroupTable:
    """Memoized :class:`GroupTable` of a published block output.

    Keyed by output identity *and* publish version: the rollup publish
    path mutates one persistent ``BlockOutput`` in place across batches
    (bumping ``version`` each cycle), so identity alone would serve a
    stale flattening of the previous batch.
    """
    version = getattr(view, "version", 0)
    with _LOCK:
        hit = _CACHE.get(view)
    if hit is not None and hit[0] == version:
        STATS.inc("view_table_hits")
        return hit[1]
    STATS.inc("view_table_misses")
    table = GroupTable(view)
    with _LOCK:
        cached = _CACHE.get(view)
        if cached is not None and cached[0] == version:
            return cached[1]
        _CACHE[view] = (version, table)
    return table
