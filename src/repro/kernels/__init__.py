"""Vectorized hot-path kernels for the online engine.

The modules in this package replace per-row Python loops on the engine's
hot paths with batched NumPy kernels:

* :mod:`repro.kernels.codec` — key factorization: group-by/join key
  columns become dense integer codes, memoized per (immutable) relation;
* :mod:`repro.kernels.views` — code-indexed lookup tables over published
  :class:`~repro.core.blocks.BlockOutput` group views;
* :mod:`repro.kernels.joins` — cross-batch cached hash-join index and a
  vectorized equi-join identical to the reference row-wise join;
* :mod:`repro.kernels.resolve` — batched lineage resolution and
  array-wide interval arithmetic for predicate classification;
* :mod:`repro.kernels.holistic` — sort-based grouped reductions for the
  per-trial holistic aggregate path;
* :mod:`repro.kernels.stats` — cache hit/miss counters surfaced through
  the observability registry.

Every kernel has a row-wise reference implementation in the engine
(selected with ``OnlineConfig(vectorize=False)``); the contract is
*bit-identical* outputs, enforced by ``tests/test_kernels.py`` and the
property suite. Submodules are imported directly (not re-exported here)
to keep import edges acyclic: ``codec`` depends only on NumPy, so even
``repro.relational`` may use it.
"""
