"""AST-based lint suite over the engine's own source (``ENG0xx`` rules).

The executor layer assumes contracts the Python type system cannot
express: ``process`` must treat its inputs as immutable (sibling
operators read the same :class:`~repro.core.operators.DeltaBatch`),
between-batch state must live in named :class:`~repro.state.StateStore`
entries (so checkpoint/restore and the Figure 9(b) accounting see it),
lineage blocks have a single producing operator (lock-free parallel
waves depend on it), and batch-pure code paths must be deterministic
(bit-identical serial/parallel replay depends on it). This module
enforces those contracts statically over ``src/repro`` itself.

Framework:

* :class:`LintRule` — one pluggable rule; register instances in
  :data:`LINT_RULES` (or pass your own list to :func:`run_lint`);
* *operator-class* scope — a rule that only makes sense inside an online
  operator applies to every class that defines a
  ``process(self, delta, ctx)`` method (the ``SpineOp`` signature);
* suppressions — a trailing ``# noqa`` comment suppresses every rule on
  that line, ``# noqa: ENG001,ENG004`` only the named ones (the same
  grammar ruff/flake8 use).

Diagnostics are :class:`~repro.analysis.AnalysisDiagnostic` records with
``file:line`` locations, aggregated into an
:class:`~repro.analysis.AnalysisReport` that CI serializes as a build
artifact.
"""

from __future__ import annotations

import ast
import pathlib
import re
import time
from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator

from repro.analysis.diagnostics import AnalysisDiagnostic, AnalysisReport

__all__ = [
    "ENGINE_LINT_RULES",
    "LINT_RULES",
    "LintRule",
    "lint_source",
    "run_lint",
]

#: Rule catalog (ids -> one-line description). Mirrored in DESIGN.md; the
#: test suite asserts every rule here is triggered by some fixture.
ENGINE_LINT_RULES: dict[str, str] = {
    "ENG001": "process() mutates its input DeltaBatch or ctx.delta",
    "ENG002": "between-batch state assigned to a bare instance attribute "
    "outside the open/init lifecycle",
    "ENG003": "block write from an operator that is not the block's "
    "declared producer",
    "ENG004": "banned nondeterminism (time/random/uuid) in a batch-pure "
    "code path",
    "ENG005": "iteration over an unordered set in a batch-pure code path "
    "(dict/set-ordering hazard)",
    "ENG006": "in-place write to a Relation column/mask buffer outside the "
    "storage layer's mutation helpers",
}

#: Methods whose self-attribute assignments are configuration, not
#: between-batch state: construction, lifecycle edges, and recovery reset.
_SETUP_METHODS = frozenset({"__init__", "open", "_init_state", "reset", "close"})

#: Method calls that mutate their receiver in place.
_MUTATOR_METHODS = frozenset(
    {
        "add",
        "append",
        "clear",
        "discard",
        "extend",
        "fill",
        "insert",
        "pop",
        "popitem",
        "publish",
        "put",
        "remove",
        "setdefault",
        "sort",
        "update",
    }
)

#: Dotted-prefix deny list for batch-pure code (ENG004).
_BANNED_PREFIXES = (
    "time.",
    "random.",
    "np.random.",
    "numpy.random.",
    "uuid.",
    "secrets.",
)
_BANNED_EXACT = frozenset({"os.urandom", "datetime.now", "datetime.datetime.now"})


# ---------------------------------------------------------------------------
# Framework
# ---------------------------------------------------------------------------


@dataclass
class LintModule:
    """One parsed source file handed to every rule."""

    path: str
    tree: ast.Module
    source_lines: list[str] = field(default_factory=list)

    def location(self, node: ast.AST) -> str:
        return f"{self.path}:{getattr(node, 'lineno', 0)}"


class LintRule:
    """Base class of one pluggable lint rule."""

    rule_id: str = "ENG000"
    description: str = ""

    def check(self, module: LintModule) -> Iterator[AnalysisDiagnostic]:
        raise NotImplementedError

    def diag(
        self, module: LintModule, node: ast.AST, message: str, hint: str = ""
    ) -> AnalysisDiagnostic:
        return AnalysisDiagnostic(self.rule_id, module.location(node), message, hint)


# -- shared AST helpers ------------------------------------------------------


def _root_name(node: ast.AST) -> str | None:
    """The base ``Name`` of an attribute/subscript/call chain, if any."""
    while isinstance(node, (ast.Attribute, ast.Subscript, ast.Starred)):
        node = node.value
    if isinstance(node, ast.Call):
        return _root_name(node.func)
    if isinstance(node, ast.Name):
        return node.id
    return None


def _dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` for a pure attribute chain rooted at a Name."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def _is_ctx_delta(node: ast.AST, ctx_name: str) -> bool:
    return (
        isinstance(node, ast.Attribute)
        and node.attr == "delta"
        and isinstance(node.value, ast.Name)
        and node.value.id == ctx_name
    )


def _chain_touches(node: ast.AST, predicate: Callable[[ast.AST], bool]) -> bool:
    """Whether any link of an attribute/subscript chain satisfies
    ``predicate`` (used to catch e.g. ``delta.certain.columns[...]``)."""
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        if predicate(node):
            return True
        node = node.value
    return predicate(node)


def _operator_classes(tree: ast.Module) -> Iterator[ast.ClassDef]:
    """Classes implementing the ``SpineOp.process(self, delta, ctx)``
    contract — the scope of the operator-only rules."""
    for node in ast.walk(tree):
        if not isinstance(node, ast.ClassDef):
            continue
        for item in node.body:
            if (
                isinstance(item, ast.FunctionDef)
                and item.name == "process"
                and [a.arg for a in item.args.args] == ["self", "delta", "ctx"]
            ):
                yield node
                break


def _methods(cls: ast.ClassDef) -> Iterator[ast.FunctionDef]:
    for item in cls.body:
        if isinstance(item, ast.FunctionDef):
            yield item


def _property_setters(cls: ast.ClassDef) -> set[str]:
    """Names with an ``@name.setter`` method — assignments to these are
    store-backed writes, not bare instance attributes."""
    setters: set[str] = set()
    for method in _methods(cls):
        for deco in method.decorator_list:
            if isinstance(deco, ast.Attribute) and deco.attr == "setter":
                setters.add(method.name)
    return setters


# ---------------------------------------------------------------------------
# Rules
# ---------------------------------------------------------------------------


class NoInputMutation(LintRule):
    """ENG001: ``process`` must not mutate ``delta`` or ``ctx.delta``."""

    rule_id = "ENG001"
    description = ENGINE_LINT_RULES["ENG001"]

    def check(self, module: LintModule) -> Iterator[AnalysisDiagnostic]:
        for cls in _operator_classes(module.tree):
            for method in _methods(cls):
                if method.name != "process":
                    continue
                args = [a.arg for a in method.args.args]
                delta_name, ctx_name = args[1], args[2]
                yield from self._check_body(module, method, delta_name, ctx_name)

    def _check_body(
        self,
        module: LintModule,
        method: ast.FunctionDef,
        delta_name: str,
        ctx_name: str,
    ) -> Iterator[AnalysisDiagnostic]:
        def is_input_rooted(node: ast.AST) -> bool:
            if _chain_touches(node, lambda n: _is_ctx_delta(n, ctx_name)):
                return True
            return _root_name(node) == delta_name

        for node in ast.walk(method):
            if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                targets = (
                    node.targets if isinstance(node, ast.Assign) else [node.target]
                )
                for target in targets:
                    if isinstance(
                        target, (ast.Attribute, ast.Subscript)
                    ) and is_input_rooted(target):
                        yield self.diag(
                            module,
                            node,
                            f"assignment into the operator input "
                            f"{ast.unparse(target)}",
                            "build a new DeltaBatch/Relation instead; inputs "
                            "are shared with sibling operators",
                        )
            elif isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr in _MUTATOR_METHODS
                    and is_input_rooted(func.value)
                ):
                    yield self.diag(
                        module,
                        node,
                        f"mutating call {ast.unparse(func)}() on the "
                        "operator input",
                        "copy before mutating, or restructure as a pure "
                        "transformation",
                    )


class StateOnlyInStore(LintRule):
    """ENG002: between-batch state lives in named store entries only."""

    rule_id = "ENG002"
    description = ENGINE_LINT_RULES["ENG002"]

    def check(self, module: LintModule) -> Iterator[AnalysisDiagnostic]:
        for cls in _operator_classes(module.tree):
            setters = _property_setters(cls)
            for method in _methods(cls):
                if method.name in _SETUP_METHODS or method.name in setters:
                    continue
                for node in ast.walk(method):
                    if not isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                        continue
                    targets = (
                        node.targets if isinstance(node, ast.Assign) else [node.target]
                    )
                    for target in targets:
                        if (
                            isinstance(target, ast.Attribute)
                            and isinstance(target.value, ast.Name)
                            and target.value.id == "self"
                            and target.attr not in setters
                        ):
                            yield self.diag(
                                module,
                                node,
                                f"instance attribute self.{target.attr} assigned "
                                f"in {cls.name}.{method.name}()",
                                "between-batch state must live in a named "
                                "StateStore entry (self.state.put) declared in "
                                "the class's state_rule, or behind a property "
                                "setter that writes the store",
                            )


class BlockWriteByProducerOnly(LintRule):
    """ENG003: only a block's declared producer writes ``ctx.blocks``."""

    rule_id = "ENG003"
    description = ENGINE_LINT_RULES["ENG003"]

    def check(self, module: LintModule) -> Iterator[AnalysisDiagnostic]:
        for cls in _operator_classes(module.tree):
            for method in _methods(cls):
                yield from self._check_method(module, cls, method)

    def _check_method(
        self, module: LintModule, cls: ast.ClassDef, method: ast.FunctionDef
    ) -> Iterator[AnalysisDiagnostic]:
        for node in ast.walk(method):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if (
                        isinstance(target, ast.Subscript)
                        and _dotted_name(target.value) == "ctx.blocks"
                        and _dotted_name(target.slice) != "self.block_id"
                    ):
                        yield self.diag(
                            module,
                            node,
                            f"{cls.name}.{method.name}() publishes block "
                            f"[{ast.unparse(target.slice)}] but an operator "
                            "may only write the block it declares via "
                            "self.block_id",
                            "route cross-block effects through the block's "
                            "producing unit",
                        )
            elif isinstance(node, ast.Call):
                func = node.func
                if not isinstance(func, ast.Attribute):
                    continue
                receiver = func.value
                # ctx.blocks.update(...) / ctx.block(i).publish(...)
                if (
                    _dotted_name(receiver) == "ctx.blocks"
                    and func.attr in _MUTATOR_METHODS
                ) or (
                    isinstance(receiver, ast.Call)
                    and _dotted_name(receiver.func) == "ctx.block"
                    and func.attr in _MUTATOR_METHODS
                ):
                    yield self.diag(
                        module,
                        node,
                        f"{cls.name}.{method.name}() mutates the shared block "
                        f"registry via {ast.unparse(func)}()",
                        "blocks are published whole by their producing "
                        "aggregate; consumers read only",
                    )


class NoNondeterminism(LintRule):
    """ENG004: batch-pure code must not read clocks or entropy."""

    rule_id = "ENG004"
    description = ENGINE_LINT_RULES["ENG004"]

    def check(self, module: LintModule) -> Iterator[AnalysisDiagnostic]:
        for cls in _operator_classes(module.tree):
            for method in _methods(cls):
                if method.name in ("__init__", "open", "close"):
                    continue
                for node in ast.walk(method):
                    if not isinstance(node, ast.Call):
                        continue
                    name = _dotted_name(node.func)
                    if name is None:
                        continue
                    if name in _BANNED_EXACT or name.startswith(_BANNED_PREFIXES):
                        yield self.diag(
                            module,
                            node,
                            f"call to {name}() in batch-pure "
                            f"{cls.name}.{method.name}()",
                            "batch results must be a pure function of the "
                            "batch inputs and seeded config (serial/parallel "
                            "and recovery replay must agree bit for bit)",
                        )


class NoUnorderedIteration(LintRule):
    """ENG005: don't iterate raw sets where order reaches the output."""

    rule_id = "ENG005"
    description = ENGINE_LINT_RULES["ENG005"]

    def check(self, module: LintModule) -> Iterator[AnalysisDiagnostic]:
        for cls in _operator_classes(module.tree):
            for method in _methods(cls):
                if method.name in ("__init__", "open", "close"):
                    continue
                for node in ast.walk(method):
                    iters: list[ast.expr] = []
                    if isinstance(node, (ast.For, ast.AsyncFor)):
                        iters.append(node.iter)
                    elif isinstance(
                        node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
                    ):
                        iters.extend(gen.iter for gen in node.generators)
                    for item in iters:
                        if _is_set_expression(item):
                            yield self.diag(
                                module,
                                node,
                                f"iteration over the unordered set expression "
                                f"{ast.unparse(item)}",
                                "wrap the set in sorted(...) so the iteration "
                                "order (and anything derived from it) is "
                                "deterministic",
                            )


def _is_set_expression(node: ast.expr) -> bool:
    if isinstance(node, ast.Set):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("set", "frozenset")
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.BitXor, ast.Sub)
    ):
        return _is_set_expression(node.left) or _is_set_expression(node.right)
    return False


#: Buffer attributes of :class:`~repro.relational.relation.Relation` and
#: its storage sidecars. With zero-copy ``slice`` batches and memmapped
#: ingestion these arrays alias other relations (and disk pages), so an
#: in-place write anywhere corrupts every aliasing view.
_BUFFER_ATTRS = frozenset(
    {"columns", "mult", "trial_mults", "codes", "null_mask", "slots", "block_ids"}
)

#: Module suffixes allowed to write buffers: the storage layer's own
#: mutation helpers and the Relation constructor/validators.
_BUFFER_OWNERS = ("relational/relation.py",)


def _touches_buffer_attr(node: ast.AST) -> bool:
    """Whether an attribute/subscript chain reads one of the buffer
    attributes (catches ``rel.columns["x"][mask]`` and ``enc.codes[i]``)."""
    return _chain_touches(
        node, lambda n: isinstance(n, ast.Attribute) and n.attr in _BUFFER_ATTRS
    )


class NoBufferWrites(LintRule):
    """ENG006: relation buffers are immutable outside the storage layer.

    ``Relation.slice`` and :class:`~repro.storage.chunks.DiskTable` hand
    out views, not copies; writing through ``.columns[...]``, ``.mult``,
    ``.trial_mults``, or a sidecar's ``.codes``/``.null_mask``/``.slots``
    buffers therefore mutates sibling batches (or read-only disk maps,
    which raise). Unlike ENG001 this applies to the whole engine source,
    not just operator classes — any helper holding a relation can alias.
    """

    rule_id = "ENG006"
    description = ENGINE_LINT_RULES["ENG006"]

    def check(self, module: LintModule) -> Iterator[AnalysisDiagnostic]:
        path = module.path.replace("\\", "/")
        if "/storage/" in path or path.endswith(_BUFFER_OWNERS):
            return
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (
                    node.targets if isinstance(node, ast.Assign) else [node.target]
                )
                for target in targets:
                    if isinstance(target, ast.Subscript) and _touches_buffer_attr(
                        target
                    ):
                        yield self.diag(
                            module,
                            node,
                            f"in-place write {ast.unparse(target)} into a "
                            "relation buffer",
                            "buffers may be zero-copy views of other batches "
                            "or disk maps; build new arrays (Relation.take / "
                            "_from_parts) or go through repro.storage helpers",
                        )
            elif isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr in _MUTATOR_METHODS
                    and _touches_buffer_attr(func.value)
                ):
                    yield self.diag(
                        module,
                        node,
                        f"mutating call {ast.unparse(func)}() on a relation "
                        "buffer",
                        "buffers may be zero-copy views of other batches or "
                        "disk maps; copy first or go through repro.storage "
                        "helpers",
                    )


#: The default pluggable rule set.
LINT_RULES: list[LintRule] = [
    NoInputMutation(),
    StateOnlyInStore(),
    BlockWriteByProducerOnly(),
    NoNondeterminism(),
    NoUnorderedIteration(),
    NoBufferWrites(),
]


# ---------------------------------------------------------------------------
# Driver + suppressions
# ---------------------------------------------------------------------------

_NOQA_RE = re.compile(r"#\s*noqa(?::\s*(?P<codes>[A-Z0-9, ]+))?", re.IGNORECASE)


def _suppressed(diag: AnalysisDiagnostic, source_lines: list[str]) -> bool:
    try:
        line_no = int(diag.location.rsplit(":", 1)[1])
    except (IndexError, ValueError):
        return False
    if not 1 <= line_no <= len(source_lines):
        return False
    match = _NOQA_RE.search(source_lines[line_no - 1])
    if match is None:
        return False
    codes = match.group("codes")
    if codes is None:
        return True  # bare "# noqa" suppresses everything on the line
    return diag.rule_id in {c.strip().upper() for c in codes.split(",")}


def lint_source(
    source: str, path: str = "<string>", rules: Iterable[LintRule] | None = None
) -> list[AnalysisDiagnostic]:
    """Lint one source text; returns un-suppressed diagnostics."""
    tree = ast.parse(source, filename=path)
    module = LintModule(path, tree, source.splitlines())
    out: list[AnalysisDiagnostic] = []
    for rule in LINT_RULES if rules is None else rules:
        for diag in rule.check(module):
            if not _suppressed(diag, module.source_lines):
                out.append(diag)
    return out


def _default_root() -> pathlib.Path:
    import repro

    return pathlib.Path(repro.__file__).parent


def _repo_relative(path: pathlib.Path) -> str:
    """A ``src/repro/...``-style path, stable across invocation directories.

    Diagnostic locations (and the ``# noqa`` baselines and CI artifacts
    built from them) must not depend on where the linter was invoked
    from, so paths are rebased onto the repository root — the nearest
    ancestor holding a ``pyproject.toml``. Sources installed outside any
    repository keep their absolute path.
    """
    resolved = path.resolve()
    for parent in resolved.parents:
        if (parent / "pyproject.toml").is_file():
            return resolved.relative_to(parent).as_posix()
    return resolved.as_posix()


def run_lint(
    root: str | pathlib.Path | None = None,
    rules: Iterable[LintRule] | None = None,
) -> AnalysisReport:
    """Lint every ``.py`` file under ``root`` (default: the installed
    ``repro`` package itself) and aggregate one report."""
    started = time.perf_counter()
    base = pathlib.Path(root) if root is not None else _default_root()
    report = AnalysisReport(subject=f"lint:{_repo_relative(base)}")
    for path in sorted(base.rglob("*.py")):
        source = path.read_text()
        rel = _repo_relative(path)
        try:
            diags = lint_source(source, rel, rules)
        except SyntaxError as exc:  # pragma: no cover - repo parses
            diags = [
                AnalysisDiagnostic(
                    "ENG000", f"{rel}:{exc.lineno or 0}", f"cannot parse: {exc.msg}"
                )
            ]
        report.extend(diags)
    report.wall_seconds = time.perf_counter() - started
    return report
