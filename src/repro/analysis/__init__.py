"""Static analysis over plans and over the engine itself.

The paper's correctness story rests on a compile-time discipline: every
operator's output carries tuple-uncertainty (``u#``) and
attribute-uncertainty (``uA``) tags, and the §4.2 delta-update state
rules are *derived* from those tags. This package checks — before a run
starts — that a compiled plan's tag flow and state rules are mutually
consistent, and that the operator implementations still honor the
contracts the executor assumes:

* :mod:`repro.analysis.typecheck` — the plan-level uncertainty
  typechecker: re-infers the Appendix-A tags bottom-up over the logical
  plan and cross-checks them against what the compiler actually emitted
  (operator placement, declared state entries, ND-cache presence, block
  production/consumption);
* :mod:`repro.analysis.lint` — an ``ast``-based lint suite over the
  engine's own source, enforcing the executor contracts (no input
  mutation in ``process``, between-batch state only in named
  :class:`~repro.state.StateStore` entries, block writes only by the
  declared producer, no banned nondeterminism in batch-pure paths);
* :mod:`repro.analysis.verify` — the runtime contract verifier behind
  ``--verify`` / ``OnlineConfig(verify=True)``, which re-checks the
  static claims dynamically (input fingerprints around ``process``,
  state-key snapshots per batch, cross-thread store-write detection);
* :mod:`repro.analysis.races` — the plan-level race detector behind
  ``iolap analyze --races``: derives a read/write effect summary per
  compiled execution unit (store entries, block edges, carried
  sidecars) and checks the summaries against the wave schedule's
  happens-before order (RACE0xx/RACE1xx/RACE2xx);
* :mod:`repro.analysis.sanitize` — the TSan-style runtime buffer
  sanitizer behind ``--sanitize`` / ``OnlineConfig(sanitize=True)``:
  freezes zero-copy buffers during ``process``, tracks aliased-view
  provenance, and cross-checks per-batch buffer access logs between
  executor threads (SAN0xx).

Everything reports through :class:`AnalysisDiagnostic`: a structured
(rule id, location, message, fix hint) record instead of a runtime
surprise.
"""

from repro.analysis.diagnostics import AnalysisDiagnostic, AnalysisReport

__all__ = [
    "AnalysisDiagnostic",
    "AnalysisReport",
    "analyze_query",
    "analyze_query_races",
    "check_plan",
    "check_plan_races",
    "run_lint",
]


def __getattr__(name: str) -> object:
    # Lazy re-exports: repro.core imports the verifier and sanitizer from
    # this package, so the package __init__ must not import repro.core
    # back eagerly.
    if name in ("check_plan", "analyze_query"):
        from repro.analysis import typecheck

        return getattr(typecheck, name)
    if name in ("check_plan_races", "analyze_query_races"):
        from repro.analysis import races

        return getattr(races, name)
    if name == "run_lint":
        from repro.analysis.lint import run_lint

        return run_lint
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
