"""Runtime contract verification (``--verify`` / ``OnlineConfig(verify=True)``).

The static analyzer (:mod:`repro.analysis.typecheck` and
:mod:`repro.analysis.lint`) makes claims about how operators behave. This
module tests those claims *while the engine runs*, so the analyzer itself
cannot silently drift from the implementation:

* **Input immutability** — every operator's input :class:`DeltaBatch`
  (and the installed streamed delta, ``ctx.delta``) is fingerprinted
  before ``process`` and re-fingerprinted after; any difference means the
  operator mutated data another operator may also read.
* **State discipline** — after every ``process`` call the operator's
  live :meth:`state_items` keys are compared against its class's declared
  :class:`~repro.core.operators.StateRule` entries, so between-batch state
  cannot appear or vanish outside the declaration.
* **Write isolation** — a write observer installed on every operator's
  :class:`~repro.state.InMemoryStateStore` attributes each ``put``/
  ``delete`` to the thread that issued it; two distinct threads writing
  the same store entry within one batch means a ParallelExecutor wave
  raced on shared state.

All violations raise :class:`~repro.errors.ContractViolationError`.
Verification is observational: a verified run produces bit-identical
results to an unverified one (asserted by the test suite).

This module deliberately imports nothing from ``repro.core`` — it is
loaded from :class:`~repro.core.blocks.RuntimeContext`, so an import in
the other direction would cycle. Operators are duck-typed through the
attributes the ``SpineOp`` contract guarantees (``label``, ``state``,
``state_items``, ``state_rule``).
"""

from __future__ import annotations

import hashlib
import threading
from typing import Any, Iterable

from repro.errors import ContractViolationError

__all__ = ["ContractVerifier", "fingerprint_value"]


def _hash_bytes(parts: Iterable[bytes]) -> bytes:
    digest = hashlib.blake2b(digest_size=16)
    for part in parts:
        digest.update(part)
    return digest.digest()


def _relation_parts(rel: Any) -> Iterable[bytes]:
    yield str(len(rel)).encode()
    for name in rel.schema.names:
        arr = rel.columns[name]
        yield name.encode()
        if arr.dtype == object:
            # Lineage refs / uncertain values: repr is deterministic and
            # content-derived, which is all a mutation check needs.
            for item in arr.tolist():
                yield repr(item).encode()
        else:
            yield arr.tobytes()
    yield rel.mult.tobytes()
    if rel.trial_mults is not None:
        yield rel.trial_mults.tobytes()


def fingerprint_value(value: Any) -> bytes | None:
    """Content fingerprint of an operator input (None stays None).

    Accepts the three shapes ``process`` receives — ``None`` for leaves,
    a ``DeltaBatch`` for unary operators, a list of them for n-ary — plus
    bare relations (used for ``ctx.delta``).
    """
    if value is None:
        return None
    if isinstance(value, list):
        return _hash_bytes(b for item in value for b in _iter_parts(item))
    return _hash_bytes(_iter_parts(value))


def _iter_parts(value: Any) -> Iterable[bytes]:
    certain = getattr(value, "certain", None)
    volatile = getattr(value, "volatile", None)
    if certain is not None and volatile is not None:  # a DeltaBatch
        yield b"certain"
        yield from _relation_parts(certain)
        yield b"volatile"
        yield from _relation_parts(volatile)
    else:  # a bare Relation (ctx.delta)
        yield from _relation_parts(value)


class ContractVerifier:
    """Cross-checks the static contracts dynamically, one batch at a time.

    Installed on :class:`~repro.core.blocks.RuntimeContext` when
    ``OnlineConfig.verify`` is set; :func:`~repro.core.operators.base.
    drive_pipeline` calls :meth:`before_process` / :meth:`after_process`
    around every operator invocation, and the batch executors call
    :meth:`begin_batch` at each batch boundary.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        #: Structured-warning emitter with the signature of
        #: ``Tracer.warning(name, batch=None, **args)``. ``RuntimeContext.
        #: attach_obs`` wires the observability tracer in here, so every
        #: contract violation also lands on the trace timeline; None keeps
        #: violations exception-only.
        self.emit: Any = None
        self._batch_no: int | None = None
        #: (store id, entry key) -> {thread idents that wrote it this batch}.
        self._writers: dict[tuple[int, str], set[int]] = {}
        #: (store id, entry key) -> operator label (for messages).
        self._owners: dict[tuple[int, str], str] = {}
        #: id(op) -> fingerprint of its input taken in before_process.
        self._input_fps: dict[int, bytes | None] = {}
        #: Fingerprint of ctx.delta for the current batch.
        self._delta_fp: bytes | None = None
        #: Stores already carrying our observer (by id, to attach once).
        self._observed: set[int] = set()
        #: id(op) -> op label, for stores observed through that op.
        self._violations: int = 0

    # -- batch lifecycle ---------------------------------------------------------

    def begin_batch(self, batch_no: int) -> None:
        """Reset per-batch tracking (called by the executors and lazily
        from :meth:`before_process` when operators are driven by hand)."""
        with self._lock:
            if batch_no == self._batch_no:
                return
            self._batch_no = batch_no
            self._writers.clear()
            self._delta_fp = None

    # -- per-operator hooks ------------------------------------------------------

    def before_process(self, op: Any, delta: Any, ctx: Any) -> None:
        self.begin_batch(ctx.batch_no)
        self._observe_store(op)
        self._input_fps[id(op)] = fingerprint_value(delta)
        with self._lock:
            if self._delta_fp is None and ctx._delta is not None:
                self._delta_fp = fingerprint_value(ctx.delta)

    def after_process(self, op: Any, delta: Any, ctx: Any) -> None:
        before = self._input_fps.pop(id(op), None)
        if fingerprint_value(delta) != before:
            raise self._violation(
                "input-mutated", op.label,
                f"operator {op.label!r} mutated its input DeltaBatch during "
                "process(); inputs are shared with sibling operators and "
                "must be treated as immutable",
            )
        with self._lock:
            delta_fp = self._delta_fp
        if delta_fp is not None and ctx._delta is not None:
            if fingerprint_value(ctx.delta) != delta_fp:
                raise self._violation(
                    "delta-mutated", op.label,
                    f"operator {op.label!r} mutated ctx.delta (the installed "
                    "streamed delta) during process()",
                )
        self._check_state_entries(op)

    # -- internals ---------------------------------------------------------------

    def _violation(self, name: str, label: str, message: str) -> ContractViolationError:
        """Count, publish (to the trace timeline if wired), and build the
        error; callers raise the return value."""
        self._violations += 1
        if self.emit is not None:
            self.emit(
                "contract-violation", batch=self._batch_no,
                check=name, op=label, message=message,
            )
        return ContractViolationError(message)

    def _check_state_entries(self, op: Any) -> None:
        declared = set(type(op).state_rule.entries)
        live = {key for key, _ in op.state_items()}
        if live != declared:
            raise self._violation(
                "undeclared-state", op.label,
                f"operator {op.label!r} holds state entries {sorted(live)} "
                f"but its StateRule declares {sorted(declared)}; between-"
                "batch state may only live in declared named entries",
            )

    def _observe_store(self, op: Any) -> None:
        store = getattr(op, "state", None)
        if store is None or id(store) in self._observed:
            return
        with self._lock:
            if id(store) in self._observed:
                return
            self._observed.add(id(store))
        store_id = id(store)
        label = op.label

        def observer(key: str) -> None:
            self._record_write(store_id, key, label)

        store.observer = observer

    def _record_write(self, store_id: int, key: str, label: str) -> None:
        ident = threading.get_ident()
        with self._lock:
            writers = self._writers.setdefault((store_id, key), set())
            writers.add(ident)
            self._owners[(store_id, key)] = label
            raced = len(writers) > 1
        if raced:
            raise self._violation(
                "write-race", label,
                f"state entry {key!r} of operator {label!r} was written by "
                "two different threads within one batch; store entries must "
                "have a single writing unit per wave",
            )
