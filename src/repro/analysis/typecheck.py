"""The plan-level uncertainty typechecker (Appendix A / §4.1-§4.2).

Two redundant passes, cross-checked against each other:

1. **Tag inference** (:func:`infer_tags`) — an independent bottom-up
   re-derivation of every plan node's uncertainty tags over the bag
   algebra: tuple uncertainty ``u#``, attribute uncertainty ``uA``,
   sample weighting, and raw-stream lineage. Unsupported tag flows are
   reported as ``TC1xx`` diagnostics instead of exceptions, so one run
   reports *all* problems of a plan.
2. **Emission checks** (:func:`check_units` / :func:`check_pipeline`) —
   the compiled plan is walked operator by operator and checked against
   the tags and against each operator class's declarative
   :class:`~repro.core.operators.TagRule` / ``StateRule`` specs: an
   ``UncertainFilterOp`` must sit exactly where an uncertain attribute is
   consumed, declared state entries must match the §4.2 state rule the
   tags demand (ND cache present iff a non-deterministic set can exist,
   sketch-only aggregation iff the input is certain-append), and the
   block-production graph must be uniquely-produced and acyclic.

``TC2xx`` rules fire when the two passes disagree with the engine's own
:func:`repro.core.uncertainty.analyze` — i.e. when the typechecker's
model and the compiler's behaviour have drifted apart.
"""

from __future__ import annotations

import time
from typing import Iterator

from repro.analysis.diagnostics import AnalysisDiagnostic, AnalysisReport
from repro.core.compiler import (
    CompiledQuery,
    ExecutionUnit,
    StreamPipelineUnit,
    compile_online,
)
from repro.core.operators import (
    AggregateOp,
    FilterOp,
    SpineOp,
    UncertainFilterOp,
    UncertainJoinOp,
    iter_ops,
)
from repro.core.uncertainty import STATIC_TAGS, NodeTags
from repro.core.uncertainty import analyze as engine_analyze
from repro.errors import ReproError, UnsupportedQueryError
from repro.relational.aggregates import AggSpec
from repro.relational.algebra import (
    Aggregate,
    Distinct,
    Join,
    PlanNode,
    Project,
    Rename,
    Scan,
    Select,
    Union,
)
from repro.relational.catalog import Catalog
from repro.relational.expressions import Col, Comparison, conjuncts
from repro.sql.planner import plan_sql

#: Rule catalog (ids -> one-line description). Mirrored in DESIGN.md; the
#: test suite asserts every rule here is triggered by some fixture.
TYPECHECK_RULES: dict[str, str] = {
    "TC101": "plan node type is not supported by the online engine",
    "TC102": "join key is uncertain under sampling (approximate join keys, §3.3)",
    "TC103": "both join inputs stream the raw fact table (§2 streams one input)",
    "TC104": "group-by key is uncertain under sampling (§3.3)",
    "TC105": "aggregate function is not Hadamard differentiable over changing input (§3.3)",
    "TC106": "DISTINCT over an uncertain column cannot be decided incrementally",
    "TC107": "predicate over uncertain attributes must be a simple comparison (x θ y)",
    "TC108": "projection computes over uncertain attributes (defeats lazy evaluation)",
    "TC109": "aggregate over an uncertain argument needs a single identity feature",
    "TC110": "holistic aggregate over an uncertain argument cannot be re-evaluated lazily",
    "TC111": "UNION between aggregate-derived inputs is not executable online",
    "TC201": "inferred tags diverge from the engine's uncertainty analysis",
    "TC202": "typechecker and compiler disagree on whether the plan is supported",
    "TC301": "UncertainFilterOp placed where no uncertain attribute is consumed",
    "TC302": "deterministic filter path reads uncertain attributes",
    "TC303": "operator state entries do not match its declared StateRule",
    "TC304": "ND cache declaration contradicts the operator's tag rule",
    "TC305": "aggregate state split contradicts its input tags (sketch/lazy/holistic)",
    "TC306": "operator declares uncertain columns outside its output schema",
    "TC307": "operator uncertain-column tags diverge from the inferred plan tags",
    "TC308": "two execution units produce the same lineage block",
    "TC309": "execution unit consumes a lineage block no unit produces",
}


def _diag(rule_id: str, location: str, message: str, hint: str = "") -> AnalysisDiagnostic:
    return AnalysisDiagnostic(rule_id, location, message, hint)


def _node_loc(node: PlanNode) -> str:
    return f"{type(node).__name__}#{node.node_id}"


# ---------------------------------------------------------------------------
# Pass 1: independent Appendix-A tag inference over the logical plan.
# ---------------------------------------------------------------------------


def infer_tags(
    plan: PlanNode, streamed_tables: set[str]
) -> tuple[dict[int, NodeTags], list[AnalysisDiagnostic]]:
    """Re-derive the ``u#``/``uA`` tags of every plan node, bottom-up.

    Never raises: unsupported shapes yield diagnostics and a conservative
    best-effort tag so inference can continue above them.
    """
    tags: dict[int, NodeTags] = {}
    diags: list[AnalysisDiagnostic] = []
    _infer(plan, streamed_tables, tags, diags)
    return tags, diags


def _infer(
    node: PlanNode,
    streamed: set[str],
    tags: dict[int, NodeTags],
    diags: list[AnalysisDiagnostic],
) -> NodeTags:
    result = _infer_inner(node, streamed, tags, diags)
    tags[node.node_id] = result
    return result


def _infer_inner(
    node: PlanNode,
    streamed: set[str],
    tags: dict[int, NodeTags],
    diags: list[AnalysisDiagnostic],
) -> NodeTags:
    loc = _node_loc(node)

    if isinstance(node, Scan):
        if node.table in streamed:
            # Streamed leaf: attributes certain, multiplicities follow the
            # accumulated sampling function, rows are a uniform sample.
            return NodeTags(True, frozenset(), True, True)
        return STATIC_TAGS

    if isinstance(node, Select):
        child = _infer(node.child, streamed, tags, diags)
        touched = frozenset(node.predicate.attrs() & child.uncertain_cols)
        # Predicate-shape and projection-shape restrictions (TC107/TC108)
        # apply only on the stream pipeline: small segments evaluate
        # arbitrary expressions over uncertain values per bootstrap trial.
        if touched and child.raw_stream:
            for part in conjuncts(node.predicate):
                part_touched = part.attrs() & child.uncertain_cols
                if part_touched and not isinstance(part, Comparison):
                    diags.append(
                        _diag(
                            "TC107",
                            loc,
                            f"conjunct {part!r} reads uncertain columns "
                            f"{sorted(part_touched)} but is not a simple comparison",
                            "rewrite the predicate as a conjunction of x θ y "
                            "comparisons, or resolve the column before the filter",
                        )
                    )
        return NodeTags(
            child.tuple_uncertain or bool(touched),
            child.uncertain_cols,
            child.sample_weighted,
            child.raw_stream,
        )

    if isinstance(node, Project):
        child = _infer(node.child, streamed, tags, diags)
        out_uncertain = set()
        for name, expr in node.outputs:
            touched = expr.attrs() & child.uncertain_cols
            if not touched:
                continue
            out_uncertain.add(name)
            if child.raw_stream and not isinstance(expr, Col):
                diags.append(
                    _diag(
                        "TC108",
                        loc,
                        f"output {name!r} computes over uncertain columns "
                        f"{sorted(touched)}",
                        "move the computation into the consuming predicate or "
                        "aggregate argument (lazy evaluation)",
                    )
                )
        return NodeTags(
            child.tuple_uncertain,
            frozenset(out_uncertain),
            child.sample_weighted,
            child.raw_stream,
        )

    if isinstance(node, Rename):
        child = _infer(node.child, streamed, tags, diags)
        renamed = frozenset(node.mapping.get(c, c) for c in child.uncertain_cols)
        return NodeTags(
            child.tuple_uncertain, renamed, child.sample_weighted, child.raw_stream
        )

    if isinstance(node, Join):
        left = _infer(node.left, streamed, tags, diags)
        right = _infer(node.right, streamed, tags, diags)
        for lk, rk in node.keys:
            if lk in left.uncertain_cols or rk in right.uncertain_cols:
                diags.append(
                    _diag(
                        "TC102",
                        loc,
                        f"join key {lk!r}={rk!r} is uncertain under sampling",
                        "join on certain columns, or aggregate the uncertain "
                        "side first so the key becomes a group key",
                    )
                )
        if left.raw_stream and right.raw_stream:
            diags.append(
                _diag(
                    "TC103",
                    loc,
                    "both join inputs derive row-for-row from the streamed table",
                    "stream exactly one input relation and read the others in "
                    "entirety (paper §2)",
                )
            )
        kept_right = right.uncertain_cols - set(node.right_keys)
        return NodeTags(
            left.tuple_uncertain or right.tuple_uncertain,
            left.uncertain_cols | kept_right,
            left.sample_weighted or right.sample_weighted,
            left.raw_stream or right.raw_stream,
        )

    if isinstance(node, Union):
        left = _infer(node.left, streamed, tags, diags)
        right = _infer(node.right, streamed, tags, diags)
        kinds = {
            _union_side_kind(node.left, left, streamed),
            _union_side_kind(node.right, right, streamed),
        }
        if "small" in kinds:
            diags.append(
                _diag(
                    "TC111",
                    loc,
                    "a UNION input is aggregate-derived; only stream/static "
                    "inputs can be unioned online",
                    "union the raw inputs below the aggregates, or compute the "
                    "union in a post-processing small plan",
                )
            )
        return NodeTags(
            left.tuple_uncertain or right.tuple_uncertain,
            left.uncertain_cols | right.uncertain_cols,
            left.sample_weighted or right.sample_weighted,
            left.raw_stream or right.raw_stream,
        )

    if isinstance(node, Aggregate):
        child = _infer(node.child, streamed, tags, diags)
        for g in node.group_by:
            if g in child.uncertain_cols:
                diags.append(
                    _diag(
                        "TC104",
                        loc,
                        f"group-by key {g!r} is uncertain under sampling",
                        "group by certain columns only (§3.3)",
                    )
                )
        agg_uncertain: set[str] = set()
        for spec in node.aggs:
            arg_uncertain = bool(spec.attrs() & child.uncertain_cols)
            input_changes = (
                child.tuple_uncertain or child.sample_weighted or arg_uncertain
            )
            if input_changes and not spec.func.hadamard_differentiable:
                diags.append(
                    _diag(
                        "TC105",
                        loc,
                        f"aggregate {spec.func.name.upper()} ({spec.name!r}) is "
                        "not Hadamard differentiable but its input changes "
                        "across batches",
                        "use SUM/COUNT/AVG-style aggregates, or run this query "
                        "on the batch engine",
                    )
                )
            if arg_uncertain and child.raw_stream:
                if not spec.func.decomposable:
                    diags.append(
                        _diag(
                            "TC110",
                            loc,
                            f"holistic aggregate {spec.name!r} reads the "
                            f"uncertain columns {sorted(spec.attrs() & child.uncertain_cols)}",
                            "holistic UDAFs require certain arguments online",
                        )
                    )
                elif spec.func.num_features != 1:
                    diags.append(
                        _diag(
                            "TC109",
                            loc,
                            f"aggregate {spec.name!r} over an uncertain argument "
                            f"has {spec.func.num_features} features; lazy "
                            "re-evaluation needs a single identity feature",
                            "SUM/AVG-style aggregates only over uncertain "
                            "arguments (§6.2)",
                        )
                    )
            if input_changes:
                agg_uncertain.add(spec.name)
        return NodeTags(child.tuple_uncertain, frozenset(agg_uncertain), False, False)

    if isinstance(node, Distinct):
        child = _infer(node.child, streamed, tags, diags)
        for c in node.columns:
            if c in child.uncertain_cols:
                diags.append(
                    _diag(
                        "TC106",
                        loc,
                        f"DISTINCT over uncertain column {c!r}",
                        "resolve the column (aggregate it) before DISTINCT",
                    )
                )
        return NodeTags(child.tuple_uncertain, frozenset(), False, False)

    diags.append(
        _diag(
            "TC101",
            loc,
            f"cannot type plan node {type(node).__name__}",
            "only SELECT/PROJECT/RENAME/JOIN/UNION/AGGREGATE/DISTINCT over "
            "base scans run online",
        )
    )
    return STATIC_TAGS


def _union_side_kind(node: PlanNode, side_tags: NodeTags, streamed: set[str]) -> str:
    """How the compiler will realize a UNION input: static / stream / small."""
    if not (streamed & set(node.base_tables())):
        return "static"
    return "stream" if side_tags.raw_stream else "small"


# ---------------------------------------------------------------------------
# Pass 2: checks over what the compiler actually emitted.
# ---------------------------------------------------------------------------


def _label_node_id(label: str) -> int | None:
    prefix, _, suffix = label.partition(":")
    if prefix in ("select", "join", "aggregate") and suffix.isdigit():
        return int(suffix)
    return None


def _expected_spec_split(
    op: AggregateOp,
) -> tuple[list[AggSpec], list[AggSpec], list[AggSpec]]:
    """Re-derive the (sketch, lazy, holistic) split §4.2/§6.2 demand."""
    sketch: list[AggSpec] = []
    lazy: list[AggSpec] = []
    holistic: list[AggSpec] = []
    for spec in op.specs:
        if spec.attrs() & op.child.uncertain_cols:
            lazy.append(spec)
        elif spec.func.decomposable:
            sketch.append(spec)
        else:
            holistic.append(spec)
    return sketch, lazy, holistic


def _subtree_certain_append(op: SpineOp) -> bool:
    """No operator below can put rows on the volatile channel."""
    return not any(type(o).tag_rule.introduces_nd for o in iter_ops(op))


def check_pipeline(
    root_op: SpineOp, tags: dict[int, NodeTags] | None = None
) -> list[AnalysisDiagnostic]:
    """Check one stream pipeline's operators against their declared rules."""
    diags: list[AnalysisDiagnostic] = []
    for op in iter_ops(root_op):
        diags.extend(_check_op(op, tags or {}))
    return diags


def _check_op(op: SpineOp, tags: dict[int, NodeTags]) -> Iterator[AnalysisDiagnostic]:
    cls = type(op)
    loc = op.label

    # TC303: the store must hold exactly the declared §4.2 entries.
    keys = {k for k, _ in op.state_items()}
    if keys != set(cls.state_rule.entries):
        yield _diag(
            "TC303",
            loc,
            f"state entries {sorted(keys)} do not match the declared "
            f"StateRule entries {sorted(cls.state_rule.entries)}",
            "seed every between-batch entry in _init_state and declare it "
            "in the class's state_rule",
        )

    # TC304: ND cache declared iff the tag rule says an ND set can exist.
    if (cls.state_rule.nd_entry is not None) != cls.tag_rule.introduces_nd:
        yield _diag(
            "TC304",
            loc,
            f"{cls.__name__} declares nd_entry={cls.state_rule.nd_entry!r} but "
            f"tag_rule.introduces_nd={cls.tag_rule.introduces_nd}",
            "an operator keeps a non-deterministic cache exactly when its "
            "tag rule lets tuples become non-deterministic (§4.2)",
        )

    # TC306: uncertain columns must exist in the output schema.
    stray = set(op.uncertain_cols) - set(op.schema.names)
    if stray:
        yield _diag(
            "TC306",
            loc,
            f"uncertain columns {sorted(stray)} are not in the output schema "
            f"{list(op.schema.names)}",
        )

    if isinstance(op, UncertainFilterOp):
        child_uncertain = op.child.uncertain_cols
        consumed = set().union(
            *(c.attrs() for c in op.uncertain_conjuncts)
        ) if op.uncertain_conjuncts else set()
        if not (consumed & child_uncertain):
            yield _diag(
                "TC301",
                loc,
                "uncertain-filter operator consumes no uncertain attribute "
                f"(conjunct columns {sorted(consumed)}, input uncertain "
                f"columns {sorted(child_uncertain)})",
                "the compiler must emit a plain FilterOp for fully "
                "deterministic predicates",
            )
        for part in op.det_conjuncts:
            touched = part.attrs() & child_uncertain
            if touched:
                yield _diag(
                    "TC302",
                    loc,
                    f"deterministic conjunct {part!r} reads uncertain columns "
                    f"{sorted(touched)}",
                    "classify the conjunct as uncertain so its decisions are "
                    "range-checked and sentinel-guarded",
                )
    elif isinstance(op, FilterOp):
        touched = op.predicate.attrs() & op.child.uncertain_cols
        if touched:
            yield _diag(
                "TC302",
                loc,
                f"deterministic FilterOp predicate reads uncertain columns "
                f"{sorted(touched)}",
                "the compiler must emit UncertainFilterOp where an uncertain "
                "attribute is consumed",
            )

    if isinstance(op, AggregateOp):
        sketch, lazy, holistic = _expected_spec_split(op)
        actual = (
            [s.name for s in op.sketch_specs],
            [s.name for s in op.lazy_specs],
            [s.name for s in op.holistic_specs],
        )
        expected = ([s.name for s in sketch], [s.name for s in lazy], [s.name for s in holistic])
        if actual != expected:
            yield _diag(
                "TC305",
                loc,
                f"aggregate split (sketch/lazy/holistic) is {actual}, but the "
                f"input tags demand {expected}",
                "certain decomposable arguments fold into sketches; uncertain "
                "arguments are re-evaluated lazily; holistic functions keep "
                "the row store (§4.2/§6.2)",
            )
        if _subtree_certain_append(op.child) and not op.child.uncertain_cols:
            if op.lazy_specs:
                yield _diag(
                    "TC305",
                    loc,
                    "input is certain-append but the aggregate keeps lazy "
                    f"re-evaluation specs {[s.name for s in op.lazy_specs]}",
                    "certain-append input must fold into sketches only",
                )

    # TC307: tags attached to the emitted operator vs the inferred tags.
    node_id = _label_node_id(op.label)
    if node_id is not None and node_id in tags and not cls.tag_rule.resets_tags:
        inferred = tags[node_id].uncertain_cols
        if set(op.uncertain_cols) != set(inferred):
            yield _diag(
                "TC307",
                loc,
                f"operator carries uncertain columns {sorted(op.uncertain_cols)} "
                f"but inference derives {sorted(inferred)} for plan node "
                f"{node_id}",
            )


def check_units(
    units: list[ExecutionUnit], tags: dict[int, NodeTags] | None = None
) -> list[AnalysisDiagnostic]:
    """Check a compiled unit list: pipelines plus the block dependency graph."""
    diags: list[AnalysisDiagnostic] = []
    producers: dict[int, str] = {}
    for unit in units:
        for block_id in unit.produces:
            if block_id in producers:
                diags.append(
                    _diag(
                        "TC308",
                        unit.label,
                        f"block {block_id} is already produced by "
                        f"{producers[block_id]!r}",
                        "every lineage block has exactly one producing unit; "
                        "cross-unit dataflow relies on it for lock-free "
                        "parallel execution",
                    )
                )
            else:
                producers[block_id] = unit.label
    produced = set(producers)
    for unit in units:
        missing = unit.consumes - produced
        if missing:
            diags.append(
                _diag(
                    "TC309",
                    unit.label,
                    f"consumes blocks {sorted(missing)} that no unit produces",
                    "the lineage reference would never resolve; check the "
                    "compiler's unit ordering",
                )
            )
    for unit in units:
        if isinstance(unit, StreamPipelineUnit):
            diags.extend(check_pipeline(unit.root_op, tags))
    return diags


# ---------------------------------------------------------------------------
# The full typecheck: inference + engine cross-check + emission checks.
# ---------------------------------------------------------------------------


def check_plan(
    plan: PlanNode,
    catalog: Catalog,
    streamed_table: str,
    subject: str = "plan",
) -> AnalysisReport:
    """Typecheck ``plan`` for online execution over ``streamed_table``.

    Returns a report with every violated rule; ``report.ok`` means the
    plan's tag flow, the engine's own analysis, and the compiled
    operators are all mutually consistent.
    """
    started = time.perf_counter()
    report = AnalysisReport(subject)
    tags, diags = infer_tags(plan, {streamed_table})
    report.extend(diags)
    inference_ok = not diags

    engine_tags: dict[int, NodeTags] | None = None
    try:
        engine_tags = engine_analyze(plan, {streamed_table})
    except UnsupportedQueryError as exc:
        if inference_ok:
            report.extend(
                [
                    _diag(
                        "TC202",
                        _node_loc(plan),
                        "the engine's analysis rejects a plan the typechecker "
                        f"accepts: {exc}",
                        "teach infer_tags the missing restriction",
                    )
                ]
            )
    else:
        if not inference_ok:
            report.extend(
                [
                    _diag(
                        "TC202",
                        _node_loc(plan),
                        "the typechecker rejects a plan the engine's analysis "
                        "accepts (see the TC1xx findings above)",
                        "either the engine misses a restriction or a TC1xx "
                        "rule is too strict",
                    )
                ]
            )

    if engine_tags is not None and inference_ok:
        for node_id, inferred in tags.items():
            engine = engine_tags.get(node_id)
            if engine is not None and engine != inferred:
                report.extend(
                    [
                        _diag(
                            "TC201",
                            f"node#{node_id}",
                            f"inferred tags {inferred} diverge from the "
                            f"engine's {engine}",
                        )
                    ]
                )

    compiled: CompiledQuery | None = None
    if report.ok and engine_tags is not None:
        try:
            compiled = compile_online(plan, catalog, streamed_table)
        except UnsupportedQueryError as exc:
            at = _node_loc(exc.node) if isinstance(exc.node, PlanNode) else _node_loc(plan)
            report.extend(
                [
                    _diag(
                        "TC202",
                        at,
                        f"the compiler rejects a plan the typechecker accepts: {exc}",
                        "teach infer_tags the compiler's restriction",
                    )
                ]
            )
    if compiled is not None:
        report.extend(check_units(compiled.units, tags))

    report.wall_seconds = time.perf_counter() - started
    return report


def analyze_query(
    sql: str,
    catalog: Catalog,
    streamed_table: str,
    subject: str | None = None,
) -> AnalysisReport:
    """Plan one SQL statement and typecheck it for online execution.

    The ``iolap analyze`` entry point: SQL that fails to parse or plan is
    reported as a TC101 diagnostic rather than an exception, so a batch
    of queries always yields a report per query.
    """
    started = time.perf_counter()
    if subject is None:
        subject = " ".join(sql.split())[:60]
    try:
        plan = plan_sql(sql, catalog.schemas())
    except ReproError as exc:
        report = AnalysisReport(subject)
        report.extend(
            [
                _diag(
                    "TC101",
                    "sql",
                    f"statement does not plan: {exc}",
                    "only the supported SELECT-project-join-aggregate "
                    "dialect reaches the online engine",
                )
            ]
        )
        report.wall_seconds = time.perf_counter() - started
        return report
    report = check_plan(plan, catalog, streamed_table, subject=subject)
    report.wall_seconds = time.perf_counter() - started
    return report
