"""Plan-level race detector: effect summaries checked against wave order.

The iOLAP delta-update discipline only stays correct if every state
store, lineage block, and carried sidecar has exactly one writer per
batch. PR 2's TC3xx single-producer check covers block *wiring*; this
pass covers *scheduling*: it derives a read/write effect summary per
compiled :class:`~repro.core.compiler.ExecutionUnit` and checks the
summaries against the happens-before order implied by
:func:`repro.engine.executor.dependency_waves` (units within one wave
may run concurrently on the ``ParallelExecutor``; waves are barriers).

Effect summaries combine two sources:

1. **Plan metadata** — the unit's declared ``produces``/``consumes``
   block ids and each operator's declared
   :class:`~repro.core.operators.StateRule` entries.
2. **A targeted AST walk** of each operator class (cached per class):
   literal ``self.state.put("k")`` keys, ``ctx.blocks[self.X]`` reads
   and writes, and lineage-sidecar constructions
   (``LineageRef``/``ref_pool``/``lineage_from_refs``) whose block-id
   attributes are then resolved against the *live* operator instance.

The walk is deliberately conservative about dynamism: block ids read
through ``ctx.resolve`` (dynamic lineage resolution) are not modelled,
so the detector can miss a race routed through resolution but never
reports a false positive for it.

Rules:

* ``RACE001``/``RACE002`` — two units in the *same* wave with
  conflicting store-entry / lineage-block effects (errors: the parallel
  executor may interleave them).
* ``RACE101`` — a store entry shared across waves with no
  produce/consume dependency path between the units in either
  direction (warning: the ordering is a scheduling accident, not a
  declared dependency).
* ``RACE201`` — a carried lineage sidecar whose producing unit has no
  dependency path to the carrier, i.e. the producer can republish the
  block concurrently with the carrier resolving into it (error).
* ``RACE301`` — a block-backed state entry (a store entry aliasing a
  published lineage block, e.g. the rollup plane's persistent output)
  whose backing block is produced by a *different* unit: two units would
  mutate one object graph across the store/block boundary (error).
"""

from __future__ import annotations

import ast
import inspect
import textwrap
import time
from dataclasses import dataclass, field
from typing import Any

from repro.analysis.diagnostics import AnalysisDiagnostic, AnalysisReport
from repro.core.compiler import (
    ExecutionUnit,
    SmallSegmentUnit,
    StreamPipelineUnit,
    compile_online,
)
from repro.core.operators import iter_ops
from repro.core.smallplan import iter_small_nodes
from repro.engine.executor import dependency_waves
from repro.errors import ReproError, UnsupportedQueryError
from repro.relational.algebra import PlanNode
from repro.relational.catalog import Catalog
from repro.sql.planner import plan_sql

#: Rule catalog (ids -> one-line description). Mirrored in DESIGN.md; the
#: test suite asserts every rule here is triggered by some fixture.
RACE_RULES: dict[str, str] = {
    "RACE000": "plan does not compile for online execution; race analysis skipped",
    "RACE001": "two units in the same wave touch the same state-store entry",
    "RACE002": "two units in the same wave conflict on a lineage block",
    "RACE101": "store entry shared across units with no dependency path between them",
    "RACE201": "carried sidecar's producing unit can republish concurrently",
    "RACE301": "block-backed state entry aliases a block produced by another unit",
}


def _diag(
    rule_id: str,
    location: str,
    message: str,
    hint: str = "",
    severity: str = "error",
) -> AnalysisDiagnostic:
    return AnalysisDiagnostic(rule_id, location, message, hint, severity)


# ---------------------------------------------------------------------------
# Per-class AST walk (cached): which attributes carry block/store effects.
# ---------------------------------------------------------------------------


@dataclass
class _ClassEffects:
    """Syntactic effects of one operator class, before instance resolution."""

    state_keys: set[str] = field(default_factory=set)
    block_write_attrs: set[str] = field(default_factory=set)
    block_read_attrs: set[str] = field(default_factory=set)
    sidecar_attrs: set[str] = field(default_factory=set)


_CLASS_CACHE: dict[type, _ClassEffects] = {}

#: Call targets whose arguments carry lineage block ids into sidecars.
_SIDECAR_CALLS = ("ref_pool", "lineage_from_refs", "LineageRef")


def _dotted(node: ast.AST) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = _dotted(node.value)
        return None if base is None else f"{base}.{node.attr}"
    return None


def _self_attr(node: ast.AST) -> str | None:
    """Attribute name for a ``self.X`` expression, else None."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _collect_effects(tree: ast.AST, effects: _ClassEffects) -> None:
    for node in ast.walk(tree):
        if isinstance(node, ast.Subscript) and _dotted(node.value) == "ctx.blocks":
            attr = _self_attr(node.slice)
            if attr is not None:
                if isinstance(node.ctx, ast.Store):
                    effects.block_write_attrs.add(attr)
                else:
                    effects.block_read_attrs.add(attr)
            continue
        if not isinstance(node, ast.Call):
            continue
        func = _dotted(node.func)
        if func is None:
            continue
        head = func.rsplit(".", 1)[-1]
        if func.startswith("self.state.") and head in ("put", "get", "delete"):
            if node.args and isinstance(node.args[0], ast.Constant):
                key = node.args[0].value
                if isinstance(key, str):
                    effects.state_keys.add(key)
        elif func in ("ctx.block", "ctx.blocks.get"):
            if node.args:
                attr = _self_attr(node.args[0])
                if attr is not None:
                    effects.block_read_attrs.add(attr)
        elif head in _SIDECAR_CALLS:
            for arg in node.args:
                for sub in ast.walk(arg):
                    attr = _self_attr(sub)
                    if attr is not None:
                        effects.sidecar_attrs.add(attr)


def class_effects(cls: type) -> _ClassEffects:
    """The cached AST-derived effects of one operator class."""
    cached = _CLASS_CACHE.get(cls)
    if cached is not None:
        return cached
    effects = _ClassEffects()
    try:
        source = textwrap.dedent(inspect.getsource(cls))
        tree = ast.parse(source)
    except (OSError, TypeError, SyntaxError):  # builtins, REPL classes
        pass
    else:
        _collect_effects(tree, effects)
    _CLASS_CACHE[cls] = effects
    return effects


# ---------------------------------------------------------------------------
# Effect summaries: class effects resolved against live unit instances.
# ---------------------------------------------------------------------------


@dataclass
class EffectSummary:
    """Read/write effect summary of one compiled execution unit."""

    unit_label: str
    #: ``(id(store), entry)`` pairs — id() keys match the state registry's
    #: adoption discipline (each op owns exactly one store instance).
    store_reads: set[tuple[int, str]] = field(default_factory=set)
    store_writes: set[tuple[int, str]] = field(default_factory=set)
    block_reads: set[int] = field(default_factory=set)
    block_writes: set[int] = field(default_factory=set)
    #: Block ids this unit's operators bake into carried lineage sidecars.
    sidecar_sources: set[int] = field(default_factory=set)
    #: ``(entry, block_id)`` pairs of store entries that alias a lineage
    #: block (declared via ``StateRule.block_backed``): the persistent
    #: rollup-path output lives in the store *and* is published as the
    #: block, so its block must be produced by this unit alone.
    block_backed: set[tuple[str, int]] = field(default_factory=set)
    #: ``id(store) -> op label`` for diagnostics.
    store_owners: dict[int, str] = field(default_factory=dict)


def _unit_ops(unit: ExecutionUnit) -> list[Any]:
    if isinstance(unit, StreamPipelineUnit):
        return list(iter_ops(unit.root_op))
    if isinstance(unit, SmallSegmentUnit):
        # The SmallPlanUnit itself publishes ctx.blocks[self.publish_id].
        return [unit.unit, *iter_small_nodes(unit.unit.root)]
    # Future unit kinds (and test fixtures) can expose their operator list
    # directly; an effect-free unit summarizes to its declared block edges.
    return list(getattr(unit, "ops", ()))


def _resolve_block_id(op: Any, attr: str) -> int | None:
    value = getattr(op, attr, None)
    return value if isinstance(value, int) else None


def summarize_effects(unit: ExecutionUnit) -> EffectSummary:
    """Derive the unit's effects from plan metadata + the class AST walk.

    Declared ``produces``/``consumes`` seed the block sets; declared
    ``StateRule`` entries and AST-observed store keys both count as
    read+write (the §4.2 state discipline reads and rewrites every entry
    it keeps between batches).
    """
    summary = EffectSummary(
        unit_label=unit.label,
        block_reads=set(unit.consumes),
        block_writes=set(unit.produces),
    )
    for op in _unit_ops(unit):
        effects = class_effects(type(op))
        store = getattr(op, "state", None)
        if store is not None:
            label = getattr(op, "label", type(op).__name__)
            summary.store_owners[id(store)] = str(label)
            rule = getattr(type(op), "state_rule", None)
            entries = set(effects.state_keys)
            if rule is not None:
                entries |= set(rule.entries)
            for key in entries:
                summary.store_reads.add((id(store), key))
                summary.store_writes.add((id(store), key))
            if rule is not None and rule.block_backed:
                block_id = _resolve_block_id(op, "block_id")
                if block_id is not None:
                    for entry in rule.block_backed:
                        summary.block_backed.add((entry, block_id))
                    # Mutating the backing entry mutates the published
                    # block: the aliasing makes every backed entry a
                    # block write as far as scheduling is concerned.
                    summary.block_writes.add(block_id)
        for attr in effects.block_write_attrs:
            block_id = _resolve_block_id(op, attr)
            if block_id is not None:
                summary.block_writes.add(block_id)
        for attr in effects.block_read_attrs:
            block_id = _resolve_block_id(op, attr)
            if block_id is not None:
                summary.block_reads.add(block_id)
        for attr in effects.sidecar_attrs:
            block_id = _resolve_block_id(op, attr)
            if block_id is not None:
                summary.sidecar_sources.add(block_id)
    return summary


# ---------------------------------------------------------------------------
# Happens-before checks over the wave schedule.
# ---------------------------------------------------------------------------


def _reachability(units: list[ExecutionUnit]) -> list[set[int]]:
    """``reach[i]`` = units reachable from ``i`` via produce->consume edges."""
    producers: dict[int, int] = {}
    for i, unit in enumerate(units):
        for block_id in unit.produces:
            producers.setdefault(block_id, i)
    edges: list[set[int]] = [set() for _ in units]
    for i, unit in enumerate(units):
        for block_id in unit.consumes:
            p = producers.get(block_id)
            if p is not None and p != i:
                edges[p].add(i)
    reach: list[set[int]] = [set() for _ in units]
    for start in range(len(units)):
        stack = list(edges[start])
        while stack:
            node = stack.pop()
            if node in reach[start]:
                continue
            reach[start].add(node)
            stack.extend(edges[node])
    return reach


def _store_conflicts(
    a: EffectSummary, b: EffectSummary
) -> set[tuple[int, str]]:
    return (a.store_writes & (b.store_writes | b.store_reads)) | (
        b.store_writes & a.store_reads
    )


def _block_conflicts(a: EffectSummary, b: EffectSummary) -> set[int]:
    return (a.block_writes & (b.block_writes | b.block_reads)) | (
        b.block_writes & a.block_reads
    )


def check_races(units: list[ExecutionUnit]) -> list[AnalysisDiagnostic]:
    """Check every unit pair's effects against the wave schedule."""
    diags: list[AnalysisDiagnostic] = []
    summaries = [summarize_effects(u) for u in units]
    waves = dependency_waves(units)
    wave_of: dict[int, int] = {
        i: w for w, wave in enumerate(waves) for i in wave
    }
    reach = _reachability(units)

    for i in range(len(units)):
        for j in range(i + 1, len(units)):
            a, b = summaries[i], summaries[j]
            same_wave = wave_of[i] == wave_of[j]
            ordered = j in reach[i] or i in reach[j]

            stores = _store_conflicts(a, b)
            if stores and same_wave:
                for store_id, entry in sorted(
                    stores, key=lambda pair: (pair[1], pair[0])
                ):
                    owner = a.store_owners.get(
                        store_id, b.store_owners.get(store_id, "unknown")
                    )
                    diags.append(
                        _diag(
                            "RACE001",
                            a.unit_label,
                            f"store entry {entry!r} of operator {owner!r} is "
                            f"touched by both {a.unit_label!r} and "
                            f"{b.unit_label!r} in wave {wave_of[i]}",
                            "each operator's state store must belong to "
                            "exactly one execution unit (§4.2 single-writer "
                            "discipline)",
                        )
                    )
            elif stores and not ordered:
                for store_id, entry in sorted(
                    stores, key=lambda pair: (pair[1], pair[0])
                ):
                    owner = a.store_owners.get(
                        store_id, b.store_owners.get(store_id, "unknown")
                    )
                    diags.append(
                        _diag(
                            "RACE101",
                            a.unit_label,
                            f"store entry {entry!r} of operator {owner!r} is "
                            f"shared by {a.unit_label!r} (wave {wave_of[i]}) "
                            f"and {b.unit_label!r} (wave {wave_of[j]}) with "
                            "no produce/consume path between them",
                            "the ordering is a wave-scheduling accident; "
                            "declare the dependency through a lineage block "
                            "or split the store",
                            severity="warning",
                        )
                    )

            if same_wave:
                for block_id in sorted(_block_conflicts(a, b)):
                    diags.append(
                        _diag(
                            "RACE002",
                            a.unit_label,
                            f"lineage block {block_id} is written by one of "
                            f"{a.unit_label!r}/{b.unit_label!r} while the "
                            f"other accesses it in wave {wave_of[i]}",
                            "a block write must be ordered before every "
                            "reader by the wave schedule; check the unit's "
                            "produces/consumes declarations",
                        )
                    )

    producers: dict[int, int] = {}
    for i, unit in enumerate(units):
        for block_id in unit.produces:
            producers.setdefault(block_id, i)
    for i, summary in enumerate(summaries):
        for block_id in sorted(summary.sidecar_sources):
            p = producers.get(block_id)
            if p is None or p == i:
                continue  # self-produced sidecars resolve locally
            if i not in reach[p]:
                diags.append(
                    _diag(
                        "RACE201",
                        summary.unit_label,
                        f"sidecar references block {block_id} produced by "
                        f"{units[p].label!r}, which has no dependency path "
                        f"to {summary.unit_label!r} and can republish the "
                        "block concurrently",
                        "consume the block (declare it in the unit's "
                        "consumes) so the wave schedule orders the producer "
                        "first",
                    )
                )
        for entry, block_id in sorted(summary.block_backed):
            p = producers.get(block_id)
            if p is not None and p == i:
                continue  # backed by this unit's own block: the safe shape
            produced_by = (
                f"unit {units[p].label!r}" if p is not None else "no unit"
            )
            diags.append(
                _diag(
                    "RACE301",
                    summary.unit_label,
                    f"block-backed state entry {entry!r} of "
                    f"{summary.unit_label!r} aliases lineage block "
                    f"{block_id}, which is produced by {produced_by}: two "
                    "writers would mutate one object graph across the "
                    "store/block boundary",
                    "a block-backed entry must alias a block its own unit "
                    "produces; move the entry next to the block's producer "
                    "or publish a copy instead of the stored object",
                )
            )
    return diags


# ---------------------------------------------------------------------------
# Entry points, mirroring typecheck.check_plan / analyze_query.
# ---------------------------------------------------------------------------


def check_plan_races(
    plan: PlanNode,
    catalog: Catalog,
    streamed_table: str,
    subject: str = "plan",
) -> AnalysisReport:
    """Compile ``plan`` and race-check the resulting unit schedule."""
    started = time.perf_counter()
    report = AnalysisReport(subject)
    try:
        compiled = compile_online(plan, catalog, streamed_table)
    except UnsupportedQueryError as exc:
        report.extend(
            [
                _diag(
                    "RACE000",
                    "plan",
                    f"plan does not compile for online execution: {exc}",
                    "run `iolap analyze` without --races for the typecheck "
                    "diagnosis; race analysis needs a compiled unit schedule",
                    severity="warning",
                )
            ]
        )
    else:
        report.extend(check_races(compiled.units))
    report.wall_seconds = time.perf_counter() - started
    return report


def analyze_query_races(
    sql: str,
    catalog: Catalog,
    streamed_table: str,
    subject: str | None = None,
) -> AnalysisReport:
    """Plan one SQL statement and race-check its compiled schedule."""
    started = time.perf_counter()
    if subject is None:
        subject = " ".join(sql.split())[:60]
    try:
        plan = plan_sql(sql, catalog.schemas())
    except ReproError as exc:
        report = AnalysisReport(subject)
        report.extend(
            [
                _diag(
                    "RACE000",
                    "sql",
                    f"statement does not plan: {exc}",
                    severity="warning",
                )
            ]
        )
        report.wall_seconds = time.perf_counter() - started
        return report
    report = check_plan_races(plan, catalog, streamed_table, subject=subject)
    report.wall_seconds = time.perf_counter() - started
    return report
