"""TSan-style runtime buffer sanitizer for zero-copy aliased batches.

PR 6 made mini-batches and on-disk chunks *views*: ``Relation.slice``
aliases the backing buffers and ``DiskTable`` memmaps its chunk files.
The engine's contract is immutability-by-convention (ENG006) — nothing
enforces it at runtime. Behind ``OnlineConfig(sanitize=True)`` this
module enforces it the way ThreadSanitizer would:

* **Freeze on hand-off** — every buffer handed to an operator's
  ``process`` gets ``ndarray.flags.writeable = False`` for the duration
  of the call (prior flags restored on return); every ``Relation.slice``
  view and its base buffers, and every memmapped ``DiskTable`` chunk
  view, are frozen permanently for the batch (aliased memory is
  read-only by protocol). An in-place write then raises numpy's
  read-only ``ValueError``, which :meth:`translate_write_error` converts
  into a :class:`~repro.errors.SanitizerViolationError` naming both the
  writing operator and the buffer's original owner (``SAN001``, or
  ``SAN002`` when the buffer chains to an ``np.memmap``).
* **Ownership protocol** — view provenance is tracked per batch as
  ``id(base buffer) -> owner``: the stream delta, a disk chunk, a sliced
  relation, or the first operator to emit the buffer. An output whose
  base is already owned is a pass-through and claims nothing.
* **Cross-thread access logs** — each newly claimed base records
  ``(owner label, thread id)``; a base claimed from two threads within
  one batch is a write-write race the wave schedule failed to order
  (``SAN003``). The ``ParallelExecutor`` cross-checks the log at every
  wave barrier via :meth:`check_batch`, extending PR 2's
  ``ContractVerifier`` single-writer observer from stores to raw
  buffers.

Like :mod:`repro.analysis.verify`, this module deliberately imports
nothing from ``repro.core`` — it duck-types operators, relations, and
contexts, so the engine only pays an import (and a per-call ``None``
check) when sanitizing is actually on. The hook installation in
:meth:`BufferSanitizer.activate` lazily imports the relation/storage
modules to register the slice and chunk-view hooks.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Iterator

import numpy as np

from repro.errors import SanitizerViolationError

#: Rule catalog (ids -> one-line description). Mirrored in DESIGN.md; the
#: test suite asserts every rule here is triggered by some fixture.
SANITIZE_RULES: dict[str, str] = {
    "SAN001": "in-place write to a frozen aliased batch buffer",
    "SAN002": "in-place write to a read-only memmapped DiskTable chunk",
    "SAN003": "base buffer claimed for writing from two threads in one batch",
}

#: Substrings of numpy's errors for writes into non-writeable arrays.
_READONLY_MARKERS = ("read-only", "writeable", "WRITEABLE")


def _buffers_of(obj: Any) -> Iterator[np.ndarray]:
    """Duck-typed sweep of every ndarray a dataflow message carries.

    Understands ``DeltaBatch`` (certain/volatile), ``Relation``
    (columns, mult, trial_mults, encoding and lineage sidecars), lists,
    tuples, and bare arrays; silently skips anything else.
    """
    if obj is None:
        return
    if isinstance(obj, np.ndarray):
        yield obj
        return
    if isinstance(obj, (list, tuple)):
        for item in obj:
            yield from _buffers_of(item)
        return
    for attr in ("certain", "volatile"):
        sub = getattr(obj, attr, None)
        if sub is not None and sub is not obj:
            yield from _buffers_of(sub)
    cols = getattr(obj, "columns", None)
    if isinstance(cols, dict):
        for arr in cols.values():
            if isinstance(arr, np.ndarray):
                yield arr
    for attr in ("mult", "trial_mults"):
        arr = getattr(obj, attr, None)
        if isinstance(arr, np.ndarray):
            yield arr
    encodings = getattr(obj, "encodings", None)
    if isinstance(encodings, dict):
        for enc in encodings.values():
            for attr in ("codes", "null_mask"):
                arr = getattr(enc, attr, None)
                if isinstance(arr, np.ndarray):
                    yield arr
    lineage = getattr(obj, "lineage", None)
    if isinstance(lineage, dict):
        for lin in lineage.values():
            for attr in ("pool", "slots", "block_ids"):
                arr = getattr(lin, attr, None)
                if isinstance(arr, np.ndarray):
                    yield arr


def _base(arr: np.ndarray) -> np.ndarray:
    """The root of the ``.base`` chain — the buffer aliases share."""
    while isinstance(arr.base, np.ndarray):
        arr = arr.base
    return arr


def _memmap_of(arr: np.ndarray) -> np.memmap | None:
    while isinstance(arr, np.ndarray):
        if isinstance(arr, np.memmap):
            return arr
        if not isinstance(arr.base, np.ndarray):
            return None
        arr = arr.base
    return None


def _op_label(op: Any) -> str:
    return str(getattr(op, "label", type(op).__name__))


class _Frame:
    """One in-flight ``process`` call on the current thread."""

    __slots__ = ("label", "restores")

    def __init__(self, label: str) -> None:
        self.label = label
        self.restores: list[tuple[np.ndarray, bool]] = []


class BufferSanitizer:
    """Per-run runtime sanitizer; one instance lives on the context.

    All mutating methods are cheap (flag flips and dict updates) and
    thread-safe; ``seconds`` accumulates their wall time so the
    controller can report the overhead honestly as
    ``RunMetrics.sanitize_seconds``.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._local = threading.local()
        self._batch_no: int | None = None
        #: id(base) -> owner label, per batch (cleared to dodge id reuse).
        self._owners: dict[int, str] = {}
        #: id(base) -> {(owner label, thread id)} write claims, per batch.
        self._claims: dict[int, set[tuple[str, int]]] = {}
        #: Strong refs keeping claimed/frozen bases alive for the batch,
        #: so the id()-keyed maps cannot alias a recycled address.
        self._pins: list[np.ndarray] = []
        self.seconds: float = 0.0
        self.emit: Any = None

    # -- batch lifecycle ----------------------------------------------------

    def begin_batch(self, batch_no: int, delta: Any = None) -> None:
        """Reset per-batch state; freeze the stream delta permanently."""
        started = time.perf_counter()
        with self._lock:
            if self._batch_no == batch_no:
                self.seconds += time.perf_counter() - started
                return
            self._batch_no = batch_no
            self._owners.clear()
            self._claims.clear()
            self._pins.clear()
            owner = f"stream:batch-{batch_no}"
            for arr in _buffers_of(delta):
                arr.flags.writeable = False
                self._own(_base(arr), owner)
        self.seconds += time.perf_counter() - started

    def check_batch(self) -> None:
        """Wave-barrier cross-check of the per-batch access log.

        Verifies no base buffer collected write claims from two threads
        within the wave that just ran, then *seals* the surviving claims:
        the barrier orders everything before it, so sealed buffers become
        plain owned memory that later waves may pass through freely —
        only genuinely concurrent (same-wave) claims can conflict.
        """
        started = time.perf_counter()
        with self._lock:
            for base_id, claims in self._claims.items():
                threads = {tid for _, tid in claims}
                if len(threads) > 1:
                    labels = sorted({label for label, _ in claims})
                    self.seconds += time.perf_counter() - started
                    raise self._violation(
                        "SAN003",
                        labels[-1],
                        labels[:-1],
                        f"base buffer {base_id} was claimed for writing by "
                        f"{labels} from {len(threads)} threads in batch "
                        f"{self._batch_no}",
                    )
            self._claims.clear()
        self.seconds += time.perf_counter() - started

    # -- per-operator hand-off ---------------------------------------------

    def before_process(self, op: Any, delta: Any, ctx: Any = None) -> None:
        """Freeze the operator's input buffers; push the writer label."""
        started = time.perf_counter()
        frame = _Frame(_op_label(op))
        for arr in _buffers_of(delta):
            frame.restores.append((arr, bool(arr.flags.writeable)))
            arr.flags.writeable = False
        self._stack().append(frame)
        self.seconds += time.perf_counter() - started

    def release(self, op: Any) -> None:
        """Restore input writeability recorded by :meth:`before_process`."""
        started = time.perf_counter()
        stack = self._stack()
        if stack:
            frame = stack.pop()
            for arr, prior in reversed(frame.restores):
                try:
                    arr.flags.writeable = prior
                except ValueError:
                    pass  # base was frozen meanwhile; stays read-only
        self.seconds += time.perf_counter() - started

    def note_output(self, op: Any, out: Any) -> None:
        """Claim ownership of every *new* base buffer the operator emitted."""
        started = time.perf_counter()
        label = _op_label(op)
        tid = threading.get_ident()
        with self._lock:
            for arr in _buffers_of(out):
                base = _base(arr)
                base_id = id(base)
                if base_id in self._owners and base_id not in self._claims:
                    continue  # pass-through of stream/disk/sliced memory
                self._own(base, label)
                claims = self._claims.setdefault(base_id, set())
                claims.add((label, tid))
                threads = {t for _, t in claims}
                if len(threads) > 1:
                    labels = sorted({name for name, _ in claims})
                    self.seconds += time.perf_counter() - started
                    raise self._violation(
                        "SAN003",
                        label,
                        [name for name in labels if name != label],
                        f"operator {label!r} wrote a buffer concurrently "
                        f"claimed by {labels} in batch {self._batch_no}",
                    )
        self.seconds += time.perf_counter() - started

    def translate_write_error(
        self, op: Any, delta: Any, ctx: Any, err: BaseException
    ) -> SanitizerViolationError | None:
        """Convert numpy's read-only ``ValueError`` into a SAN violation.

        Returns ``None`` for unrelated errors so the driver re-raises
        them untouched.
        """
        text = str(err)
        if not any(marker in text for marker in _READONLY_MARKERS):
            return None
        writer = _op_label(op)
        owners: list[str] = []
        memmap_file: str | None = None
        # Pipeline leaves read the streamed delta off the context (their
        # unit input is None), so sweep both for the owning buffer.
        candidates = [delta, getattr(ctx, "_delta", None)]
        with self._lock:
            for arr in _buffers_of(candidates):
                base = _base(arr)
                owner = self._owners.get(id(base))
                if owner is not None and owner not in owners:
                    owners.append(owner)
                if memmap_file is None:
                    mm = _memmap_of(arr)
                    if mm is not None:
                        memmap_file = str(getattr(mm, "filename", "?"))
        if memmap_file is not None:
            return self._violation(
                "SAN002",
                writer,
                owners or [f"disk:{memmap_file}"],
                f"operator {writer!r} wrote in place into a read-only "
                f"memmapped chunk of {memmap_file!r}",
            )
        return self._violation(
            "SAN001",
            writer,
            owners or ["unknown"],
            f"operator {writer!r} wrote in place into a frozen aliased "
            f"buffer owned by {owners or ['unknown']}",
        )

    # -- aliasing hooks (Relation.slice / DiskTable chunk views) ------------

    def activate(self) -> None:
        """Install the slice/chunk-view provenance hooks for this run."""
        from repro.relational import relation
        from repro.storage import chunks

        relation.set_slice_hook(self._on_slice)
        chunks.set_chunk_view_hook(self._on_chunk_view)

    def deactivate(self) -> None:
        from repro.relational import relation
        from repro.storage import chunks

        relation.set_slice_hook(None)
        chunks.set_chunk_view_hook(None)

    def _on_slice(self, base_rel: Any, view_rel: Any) -> None:
        started = time.perf_counter()
        owner = self._current_label()
        with self._lock:
            for arr in _buffers_of(base_rel):
                arr.flags.writeable = False
                self._own(_base(arr), owner)
            for arr in _buffers_of(view_rel):
                arr.flags.writeable = False
        self.seconds += time.perf_counter() - started

    def _on_chunk_view(self, table: Any, view_rel: Any) -> None:
        started = time.perf_counter()
        owner = f"disk:{getattr(table, 'path', '?')}"
        with self._lock:
            for arr in _buffers_of(view_rel):
                try:
                    arr.flags.writeable = False
                except ValueError:
                    pass  # memmap views of mode="r" files are born read-only
                self._own(_base(arr), owner)
        self.seconds += time.perf_counter() - started

    # -- internals ----------------------------------------------------------

    def _own(self, base: np.ndarray, owner: str) -> None:
        base_id = id(base)
        if base_id not in self._owners:
            self._owners[base_id] = owner
            self._pins.append(base)

    def _stack(self) -> list[_Frame]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def _current_label(self) -> str:
        stack = getattr(self._local, "stack", None)
        if stack:
            label: str = stack[-1].label
            return label
        if self._batch_no is not None:
            return f"stream:batch-{self._batch_no}"
        return "unknown"

    def _violation(
        self, rule_id: str, writer: str, owners: list[str], message: str
    ) -> SanitizerViolationError:
        full = f"{rule_id}: {message} ({SANITIZE_RULES[rule_id]})"
        if self.emit is not None:
            self.emit("sanitizer.violation", rule=rule_id, writer=writer)
        return SanitizerViolationError(rule_id, writer, owners, full)
