"""Structured diagnostics shared by the typechecker, lint, and verifier.

A diagnostic names the violated rule, where it fired (a plan node /
operator label for plan checks, ``file:line`` for lint), what went wrong,
and how to fix it. Reports aggregate diagnostics per analysis run and
serialize to JSON for the CI artifact.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field


@dataclass(frozen=True)
class AnalysisDiagnostic:
    """One violation of a typechecker or lint rule."""

    #: Stable rule identifier (``TC1xx`` inference, ``TC2xx`` cross-check,
    #: ``TC3xx`` compiled-plan, ``ENG0xx`` engine lint).
    rule_id: str
    #: Where the rule fired: a plan-node / operator label, or file:line.
    location: str
    #: What is wrong, in one sentence.
    message: str
    #: How to fix it (may be empty for self-explanatory rules).
    hint: str = ""
    #: ``"error"`` diagnostics fail the build; ``"warning"`` ones do not.
    severity: str = "error"

    def format(self) -> str:
        text = f"{self.rule_id} [{self.severity}] {self.location}: {self.message}"
        if self.hint:
            text += f"\n    hint: {self.hint}"
        return text

    def to_dict(self) -> dict[str, str]:
        return {
            "rule_id": self.rule_id,
            "location": self.location,
            "message": self.message,
            "hint": self.hint,
            "severity": self.severity,
        }


@dataclass
class AnalysisReport:
    """All diagnostics of one analysis run, plus its fixed cost."""

    #: What was analyzed (a query name, a source tree, ...).
    subject: str
    diagnostics: list[AnalysisDiagnostic] = field(default_factory=list)
    #: Wall seconds the analysis itself took (the fixed static-pass cost
    #: the benchmark harness tracks per query).
    wall_seconds: float = 0.0

    @property
    def ok(self) -> bool:
        return not any(d.severity == "error" for d in self.diagnostics)

    def extend(self, diagnostics: list[AnalysisDiagnostic]) -> None:
        self.diagnostics.extend(diagnostics)

    def rule_ids(self) -> set[str]:
        return {d.rule_id for d in self.diagnostics}

    def format(self) -> str:
        if not self.diagnostics:
            return f"{self.subject}: ok"
        lines = [f"{self.subject}: {len(self.diagnostics)} finding(s)"]
        lines += ["  " + d.format().replace("\n", "\n  ") for d in self.diagnostics]
        return "\n".join(lines)

    def to_dict(self) -> dict[str, object]:
        return {
            "subject": self.subject,
            "ok": self.ok,
            "wall_seconds": self.wall_seconds,
            "diagnostics": [d.to_dict() for d in self.diagnostics],
        }

    def to_json(self, indent: int | None = None) -> str:
        return json.dumps(self.to_dict(), indent=indent)
