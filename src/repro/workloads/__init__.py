"""Synthetic TPC-H-like and Conviva-like benchmark workloads."""

from repro.workloads.conviva import ConvivaData, generate_conviva
from repro.workloads.conviva_queries import CONVIVA_QUERIES
from repro.workloads.tpch import TPCHData, generate_tpch
from repro.workloads.tpch_queries import TPCH_QUERIES, QuerySpec

__all__ = [
    "CONVIVA_QUERIES",
    "ConvivaData",
    "QuerySpec",
    "TPCHData",
    "TPCH_QUERIES",
    "generate_conviva",
    "generate_tpch",
]
