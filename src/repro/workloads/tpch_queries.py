"""The TPC-H query subset used by the paper's evaluation (Section 8).

The paper uses "all the queries with nested subqueries structures (Q11,
Q17, Q18, Q20, Q22), and a representative subset of the rest which are
all simple SPJA queries" (Q1, Q3, Q5, Q6, Q7). Queries are expressed as
logical plans over the denormalized schema of :mod:`repro.workloads.tpch`.

Adaptations (documented per DESIGN.md §2):

* Q20's inner subquery originally aggregates ``lineitem`` while streaming
  ``partsupp``. To preserve the nested-uncertainty structure with a single
  streamed relation, the inner aggregate is the per-part average
  ``availqty`` over the streamed ``partsupp`` itself.
* Q22 drops the ``NOT EXISTS`` anti-join (set difference is outside the
  positive algebra the engine supports, Section 3.3) and keeps the nested
  scalar average over positive account balances.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.relational.aggregates import avg, count, sum_
from repro.relational.algebra import PlanNode, scan
from repro.relational.expressions import col, lit
from repro.workloads.tpch import (
    CUSTOMER_SCHEMA,
    LINEORDER_SCHEMA,
    NATION_SCHEMA,
    PART_SCHEMA,
    PARTSUPP_SCHEMA,
    SUPPLIER_SCHEMA,
)


@dataclass(frozen=True)
class QuerySpec:
    """One benchmark query: a plan factory plus run configuration."""

    name: str
    build: Callable[[], PlanNode]
    streamed_table: str
    #: Has nested aggregate subqueries (the class where iOLAP's delta
    #: algorithm beats classical rules).
    nested: bool
    description: str

    @property
    def plan(self) -> PlanNode:
        return self.build()


def _lineorder() -> PlanNode:
    return scan("lineorder", LINEORDER_SCHEMA)


def _customer() -> PlanNode:
    return scan("customer", CUSTOMER_SCHEMA)


def _supplier() -> PlanNode:
    return scan("supplier", SUPPLIER_SCHEMA)


def _nation() -> PlanNode:
    return scan("nation", NATION_SCHEMA)


def _part() -> PlanNode:
    return scan("part", PART_SCHEMA)


def _partsupp() -> PlanNode:
    return scan("partsupp", PARTSUPP_SCHEMA)


def q1() -> PlanNode:
    """Pricing summary report (flat aggregate)."""
    return (
        _lineorder()
        .select(col("shipdate") <= 2300)
        .aggregate(
            ["returnflag", "linestatus"],
            [
                sum_("quantity", "sum_qty"),
                sum_("extendedprice", "sum_base_price"),
                sum_(col("extendedprice") * (1 - col("discount")), "sum_disc_price"),
                sum_(
                    col("extendedprice") * (1 - col("discount")) * (1 + col("tax")),
                    "sum_charge",
                ),
                avg("quantity", "avg_qty"),
                avg("extendedprice", "avg_price"),
                avg("discount", "avg_disc"),
                count("count_order"),
            ],
        )
    )


def q3() -> PlanNode:
    """Shipping priority (SPJA with a dimension join)."""
    return (
        _lineorder()
        .select((col("orderdate") < 1200) & (col("shipdate") > 1200))
        .join(_customer().select(col("mktsegment").eq("BUILDING")), keys=["custkey"])
        .aggregate(
            ["orderkey", "orderdate", "shippriority"],
            [sum_(col("extendedprice") * (1 - col("discount")), "revenue")],
        )
    )


def q5() -> PlanNode:
    """Local supplier volume (multi-dimension join)."""
    return (
        _lineorder()
        .select((col("orderdate") >= 400) & (col("orderdate") < 800))
        .join(_customer(), keys=["custkey"])
        .join(_supplier(), keys=["suppkey"])
        .select(col("c_nationkey").eq(col("s_nationkey")))
        .join(_nation(), keys=[("c_nationkey", "nationkey")])
        .aggregate(
            ["n_name"],
            [sum_(col("extendedprice") * (1 - col("discount")), "revenue")],
        )
    )


def q6() -> PlanNode:
    """Forecasting revenue change (flat scalar aggregate)."""
    return (
        _lineorder()
        .select(
            (col("shipdate") >= 365)
            & (col("shipdate") < 730)
            & (col("discount") >= 0.05)
            & (col("discount") <= 0.07)
            & (col("quantity") < 24.0)
        )
        .aggregate([], [sum_(col("extendedprice") * col("discount"), "revenue")])
    )


def q7() -> PlanNode:
    """Volume shipping between two nations."""
    france = _nation().rename({"nationkey": "c_nk", "n_name": "cust_nation", "regionkey": "c_rk"})
    germany = _nation().rename({"nationkey": "s_nk", "n_name": "supp_nation", "regionkey": "s_rk"})
    return (
        _lineorder()
        .select((col("shipdate") >= 365) & (col("shipdate") <= 1095))
        .join(_customer(), keys=["custkey"])
        .join(_supplier(), keys=["suppkey"])
        .join(france, keys=[("c_nationkey", "c_nk")])
        .join(germany, keys=[("s_nationkey", "s_nk")])
        .select(
            (col("cust_nation").eq("FRANCE") & col("supp_nation").eq("GERMANY"))
            | (col("cust_nation").eq("GERMANY") & col("supp_nation").eq("FRANCE"))
        )
        .project(
            [
                ("cust_nation", "cust_nation"),
                ("supp_nation", "supp_nation"),
                ("shipyear", col("shipdate") / 365),
                ("volume", col("extendedprice") * (1 - col("discount"))),
            ]
        )
        .aggregate(["cust_nation", "supp_nation"], [sum_("volume", "revenue")])
    )


def q11() -> PlanNode:
    """Important stock identification (nested scalar aggregate over the
    same streamed relation; HAVING-style comparison of two aggregates)."""
    value_by_part = _partsupp().aggregate(
        ["partkey"], [sum_(col("supplycost") * col("availqty"), "value")]
    )
    total = _partsupp().aggregate(
        [], [sum_(col("supplycost") * col("availqty"), "total_value")]
    )
    return (
        value_by_part.join(total, keys=[])
        .select(col("value") > col("total_value") * 0.012)
        .project([("partkey", "partkey"), ("value", "value")])
    )


def q17() -> PlanNode:
    """Small-quantity-order revenue (correlated nested aggregate)."""
    avg_qty = _lineorder().aggregate(["partkey"], [avg("quantity", "avg_qty")])
    return (
        _lineorder()
        .join(
            _part().select(
                col("brand").eq("Brand#23") | col("container").eq("MED BOX")
            ),
            keys=["partkey"],
        )
        .join(avg_qty.rename({"partkey": "pk2"}), keys=[("partkey", "pk2")])
        .select(col("quantity") < col("avg_qty") * 0.7)
        .aggregate([], [sum_("extendedprice", "total_price")])
        .project([("avg_yearly", col("total_price") / 7.0)])
    )


def q18() -> PlanNode:
    """Large-volume customers (IN-subquery with HAVING → semi-join)."""
    big_orders = (
        _lineorder()
        .aggregate(["orderkey"], [sum_("quantity", "total_qty")])
        .select(col("total_qty") > 7500.0)
        .project([("orderkey", "orderkey")])
    )
    return (
        _lineorder()
        .join(big_orders.rename({"orderkey": "ok2"}), keys=[("orderkey", "ok2")])
        .join(_customer(), keys=["custkey"])
        .aggregate(["custkey", "orderkey"], [sum_("quantity", "sum_qty")])
    )


def q20() -> PlanNode:
    """Potential part promotion (correlated nested aggregate; adapted to
    keep the inner aggregate over the streamed partsupp — see module
    docstring)."""
    avg_avail = _partsupp().aggregate(["partkey"], [avg("availqty", "avg_avail")])
    return (
        _partsupp()
        .join(avg_avail.rename({"partkey": "pk2"}), keys=[("partkey", "pk2")])
        .select(col("availqty") > col("avg_avail") * 1.5)
        .join(_supplier(), keys=["suppkey"])
        .join(_nation(), keys=[("s_nationkey", "nationkey")])
        .aggregate(["n_name"], [count("promo_suppliers")])
    )


def q22() -> PlanNode:
    """Global sales opportunity (nested scalar average; anti-join dropped —
    see module docstring)."""
    positive_avg = (
        _customer()
        .select(col("acctbal") > 0.0)
        .aggregate([], [avg("acctbal", "avg_bal")])
    )
    return (
        _customer()
        .select(col("phonecc").isin([13, 17, 18, 23, 29, 30, 31]))
        .join(positive_avg, keys=[])
        .select(col("acctbal") > col("avg_bal"))
        .aggregate(["phonecc"], [count("numcust"), sum_("acctbal", "totacctbal")])
    )


TPCH_QUERIES: dict[str, QuerySpec] = {
    "Q1": QuerySpec("Q1", q1, "lineorder", False, "pricing summary (flat)"),
    "Q3": QuerySpec("Q3", q3, "lineorder", False, "shipping priority (SPJA)"),
    "Q5": QuerySpec("Q5", q5, "lineorder", False, "local supplier volume (SPJA)"),
    "Q6": QuerySpec("Q6", q6, "lineorder", False, "revenue change (flat)"),
    "Q7": QuerySpec("Q7", q7, "lineorder", False, "volume shipping (SPJA)"),
    "Q11": QuerySpec("Q11", q11, "partsupp", True, "important stock (nested)"),
    "Q17": QuerySpec("Q17", q17, "lineorder", True, "small-quantity revenue (nested)"),
    "Q18": QuerySpec("Q18", q18, "lineorder", True, "large-volume customers (nested)"),
    "Q20": QuerySpec("Q20", q20, "partsupp", True, "part promotion (nested)"),
    "Q22": QuerySpec("Q22", q22, "customer", True, "sales opportunity (nested)"),
}
