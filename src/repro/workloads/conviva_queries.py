"""The 12-query Conviva-like workload (Section 8).

The paper composes its workload "based on the real analysis used in [29,
20] on the same dataset": simple SPJA queries (C3, C5, C11, C12), complex
queries with nested subqueries and HAVING clauses (C1, C2, C4, C6–C10),
UDFs (C6, C7) and UDAFs (C8–C10), with the nested structures similar to
the TPC-H ones. We reconstruct an equivalent mix over the synthetic
sessions log (DESIGN.md §2 records the substitution):

* C1  — Slow Buffering Impact per state (nested scalar avg; Example 1).
* C2  — per-CDN sessions slower to join than their CDN's average
        (correlated nested aggregate).
* C3  —平flat: average play time and session count by state.
* C4  — contents more popular than the average content (aggregate of an
        aggregate + HAVING-style comparison).
* C5  — flat: delivered bytes by CDN for healthy HD sessions.
* C6  — UDF bucketing of join time + nested scalar average filter.
* C7  — UDF engagement score filtered against its own average (UDF under
        an aggregate and in the predicate).
* C8  — UDAF: geometric-mean bitrate by CDN over slow-buffering sessions
        (the paper's Figure 7(a) query).
* C9  — UDAF: stddev of join time by ISP for sessions slower than their
        ISP's average (correlated + UDAF).
* C10 — UDAF + HAVING: geometric-mean play time for big states only.
* C11 — flat SPJA with the cdn_info dimension join.
* C12 — flat: session count and average bitrate by ISP.
"""

from __future__ import annotations

import numpy as np

from repro.relational.aggregates import avg, count, geomean, stddev, sum_
from repro.relational.algebra import PlanNode, scan
from repro.relational.expressions import Func, col
from repro.relational.schema import ColumnType
from repro.workloads.conviva import CDN_INFO_SCHEMA, SESSIONS_SCHEMA
from repro.workloads.tpch_queries import QuerySpec


def _sessions() -> PlanNode:
    return scan("sessions", SESSIONS_SCHEMA)


def _cdn_info() -> PlanNode:
    return scan("cdn_info", CDN_INFO_SCHEMA)


def join_time_bucket(values: np.ndarray) -> np.ndarray:
    """UDF: bucket join times into 0.5-second bins, capped at 10."""
    return np.minimum(np.floor(np.asarray(values) / 0.5), 10.0)


def engagement_score(play: np.ndarray, rebuffer: np.ndarray) -> np.ndarray:
    """UDF: play time discounted by rebuffering events."""
    return np.asarray(play) / (1.0 + np.asarray(rebuffer, dtype=np.float64))


def c1() -> PlanNode:
    """Slow Buffering Impact by state (Example 1, grouped)."""
    avg_buffer = _sessions().aggregate([], [avg("buffer_time", "avg_buffer")])
    return (
        _sessions()
        .join(avg_buffer, keys=[])
        .select(col("buffer_time") > col("avg_buffer"))
        .aggregate(["state"], [avg("play_time", "avg_play"), count("sessions")])
    )


def c2() -> PlanNode:
    """Sessions joining slower than their CDN's average, per CDN."""
    avg_join = _sessions().aggregate(["cdn"], [avg("join_time", "avg_join")])
    return (
        _sessions()
        .join(avg_join.rename({"cdn": "cdn2"}), keys=[("cdn", "cdn2")])
        .select(col("join_time") > col("avg_join"))
        .aggregate(["cdn"], [count("slow_sessions"), avg("play_time", "avg_play")])
    )


def c3() -> PlanNode:
    """Flat: viewing behaviour by state."""
    return _sessions().aggregate(
        ["state"], [avg("play_time", "avg_play"), count("sessions")]
    )


def c4() -> PlanNode:
    """Contents more popular than the average content (agg of agg)."""
    per_content = _sessions().aggregate(["content_id"], [count("views")])
    avg_views = per_content.aggregate([], [avg("views", "avg_views")])
    return (
        per_content.join(avg_views, keys=[])
        .select(col("views") > col("avg_views") * 1.2)
        .project([("content_id", "content_id"), ("views", "views")])
    )


def c5() -> PlanNode:
    """Flat: healthy HD traffic by CDN."""
    return (
        _sessions()
        .select((col("bitrate") > 2500.0) & (col("failed").eq(0)))
        .aggregate(["cdn"], [sum_("bytes", "total_bytes"), count("sessions")])
    )


def c6() -> PlanNode:
    """UDF bucketing + nested scalar average."""
    avg_play = _sessions().aggregate([], [avg("play_time", "avg_play")])
    bucket = Func(
        "join_time_bucket",
        join_time_bucket,
        [col("join_time")],
        out_type=ColumnType.FLOAT,
        vectorized=True,
    )
    return (
        _sessions()
        .join(avg_play, keys=[])
        .select(col("play_time") > col("avg_play"))
        .project([("bucket", bucket), ("play_time", "play_time")])
        .aggregate(["bucket"], [count("engaged_sessions"), avg("play_time", "avg_play2")])
    )


def c7() -> PlanNode:
    """UDF engagement score compared against its average."""
    score = Func(
        "engagement_score",
        engagement_score,
        [col("play_time"), col("rebuffer_count")],
        out_type=ColumnType.FLOAT,
        vectorized=True,
    )
    scored = _sessions().project(
        [("cdn", "cdn"), ("score", score), ("bytes", "bytes")]
    )
    avg_score = scored.aggregate([], [avg("score", "avg_score")])
    return (
        scored.join(avg_score, keys=[])
        .select(col("score") > col("avg_score") * 1.5)
        .aggregate(["cdn"], [count("highly_engaged"), sum_("bytes", "engaged_bytes")])
    )


def c8() -> PlanNode:
    """UDAF geometric-mean bitrate over slow-buffering sessions by CDN
    (the Figure 7(a) query)."""
    avg_buffer = _sessions().aggregate([], [avg("buffer_time", "avg_buffer")])
    return (
        _sessions()
        .join(avg_buffer, keys=[])
        .select(col("buffer_time") > col("avg_buffer"))
        .aggregate(["cdn"], [geomean("bitrate", "gm_bitrate"), count("sessions")])
    )


def c9() -> PlanNode:
    """UDAF stddev of join time for slow joiners, per ISP (correlated)."""
    avg_join = _sessions().aggregate(["isp"], [avg("join_time", "avg_join")])
    return (
        _sessions()
        .join(avg_join.rename({"isp": "isp2"}), keys=[("isp", "isp2")])
        .select(col("join_time") > col("avg_join"))
        .aggregate(["isp"], [stddev("join_time", "sd_join"), count("slow_joins")])
    )


def c10() -> PlanNode:
    """UDAF + HAVING: geometric-mean play time for big states only."""
    per_state = _sessions().aggregate(
        ["state"], [geomean("play_time", "gm_play"), count("sessions")]
    )
    avg_sessions = per_state.aggregate([], [avg("sessions", "avg_sessions")])
    return (
        per_state.join(avg_sessions, keys=[])
        .select(col("sessions") > col("avg_sessions"))
        .project([("state", "state"), ("gm_play", "gm_play")])
    )


def c11() -> PlanNode:
    """Flat SPJA with a dimension join: tier-1 delivery cost by CDN."""
    return (
        _sessions()
        .join(_cdn_info().rename({"cdn": "cdn_d"}), keys=[("cdn", "cdn_d")])
        .select(col("tier").eq(1))
        .aggregate(
            ["cdn"],
            [sum_(col("bytes") * col("cost_per_gb") / 1e9, "delivery_cost")],
        )
    )


def c12() -> PlanNode:
    """Flat: footprint by ISP."""
    return _sessions().aggregate(
        ["isp"], [count("sessions"), avg("bitrate", "avg_bitrate")]
    )


CONVIVA_QUERIES: dict[str, QuerySpec] = {
    "C1": QuerySpec("C1", c1, "sessions", True, "slow buffering impact (nested)"),
    "C2": QuerySpec("C2", c2, "sessions", True, "slow joins per CDN (correlated)"),
    "C3": QuerySpec("C3", c3, "sessions", False, "viewing by state (flat)"),
    "C4": QuerySpec("C4", c4, "sessions", True, "popular contents (agg of agg)"),
    "C5": QuerySpec("C5", c5, "sessions", False, "healthy HD traffic (flat)"),
    "C6": QuerySpec("C6", c6, "sessions", True, "UDF buckets + nested avg"),
    "C7": QuerySpec("C7", c7, "sessions", True, "UDF engagement vs average"),
    "C8": QuerySpec("C8", c8, "sessions", True, "UDAF geomean (Fig 7a query)"),
    "C9": QuerySpec("C9", c9, "sessions", True, "UDAF stddev (correlated)"),
    "C10": QuerySpec("C10", c10, "sessions", True, "UDAF + HAVING"),
    "C11": QuerySpec("C11", c11, "sessions", False, "dimension join (flat SPJA)"),
    "C12": QuerySpec("C12", c12, "sessions", False, "footprint by ISP (flat)"),
}
