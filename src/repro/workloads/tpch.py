"""Synthetic TPC-H-like workload (Section 8 setup, scaled down).

The paper denormalizes TPC-H into an SSB-style schema: ``lineitem`` and
``orders`` join into a single ``lineorder`` fact table; the remaining
relations stay as dimensions. We generate an equivalent schema with a
seeded NumPy generator — value distributions are chosen so the benchmark
queries hit realistic selectivities, but absolute sizes are laptop-scale
(the ``scale`` parameter is roughly "thousands of lineorder rows").

Substitution note (DESIGN.md §2): the original runs on 1 TB; trend-level
results (who wins, growth shapes, crossovers) are preserved at this scale
because every algorithm under test processes the same relations.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from typing import Iterator

from repro.relational.catalog import Catalog
from repro.relational.relation import Relation
from repro.relational.schema import ColumnType, Schema
from repro.storage.columns import encode_relation

LINEORDER_SCHEMA = Schema(
    [
        ("orderkey", ColumnType.INT),
        ("linenumber", ColumnType.INT),
        ("custkey", ColumnType.INT),
        ("partkey", ColumnType.INT),
        ("suppkey", ColumnType.INT),
        ("quantity", ColumnType.FLOAT),
        ("extendedprice", ColumnType.FLOAT),
        ("discount", ColumnType.FLOAT),
        ("tax", ColumnType.FLOAT),
        ("returnflag", ColumnType.STRING),
        ("linestatus", ColumnType.STRING),
        ("shipdate", ColumnType.INT),
        ("orderdate", ColumnType.INT),
        ("shipmode", ColumnType.STRING),
        ("orderpriority", ColumnType.STRING),
        ("shippriority", ColumnType.INT),
    ]
)

CUSTOMER_SCHEMA = Schema(
    [
        ("custkey", ColumnType.INT),
        ("mktsegment", ColumnType.STRING),
        ("c_nationkey", ColumnType.INT),
        ("acctbal", ColumnType.FLOAT),
        ("phonecc", ColumnType.INT),
    ]
)

SUPPLIER_SCHEMA = Schema(
    [
        ("suppkey", ColumnType.INT),
        ("s_nationkey", ColumnType.INT),
        ("s_acctbal", ColumnType.FLOAT),
    ]
)

NATION_SCHEMA = Schema(
    [
        ("nationkey", ColumnType.INT),
        ("n_name", ColumnType.STRING),
        ("regionkey", ColumnType.INT),
    ]
)

PART_SCHEMA = Schema(
    [
        ("partkey", ColumnType.INT),
        ("brand", ColumnType.STRING),
        ("container", ColumnType.STRING),
        ("size", ColumnType.INT),
        ("retailprice", ColumnType.FLOAT),
    ]
)

PARTSUPP_SCHEMA = Schema(
    [
        ("partkey", ColumnType.INT),
        ("suppkey", ColumnType.INT),
        ("availqty", ColumnType.FLOAT),
        ("supplycost", ColumnType.FLOAT),
    ]
)

_SEGMENTS = ["AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD"]
_FLAGS = ["A", "N", "R"]
_STATUSES = ["F", "O"]
_MODES = ["AIR", "RAIL", "SHIP", "TRUCK", "MAIL"]
_PRIORITIES = ["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"]
_NATIONS = [
    "ALGERIA", "ARGENTINA", "BRAZIL", "CANADA", "EGYPT", "ETHIOPIA", "FRANCE",
    "GERMANY", "INDIA", "INDONESIA", "IRAN", "IRAQ", "JAPAN", "JORDAN",
    "KENYA", "MOROCCO", "MOZAMBIQUE", "PERU", "CHINA", "ROMANIA", "RUSSIA",
    "SAUDI ARABIA", "VIETNAM", "UNITED KINGDOM", "UNITED STATES",
]
_BRANDS = [f"Brand#{i}{j}" for i in range(1, 6) for j in range(1, 6)]
_CONTAINERS = [
    "SM CASE", "SM BOX", "MED BAG", "MED BOX", "LG CASE", "LG BOX",
    "JUMBO PACK", "WRAP PKG",
]


@dataclass
class TPCHData:
    """The generated relations plus convenience accessors."""

    lineorder: Relation
    customer: Relation
    supplier: Relation
    nation: Relation
    part: Relation
    partsupp: Relation

    def catalog(self) -> Catalog:
        return Catalog(
            {
                "lineorder": self.lineorder,
                "customer": self.customer,
                "supplier": self.supplier,
                "nation": self.nation,
                "part": self.part,
                "partsupp": self.partsupp,
            }
        )


def generate_tpch(scale: float = 1.0, seed: int = 0) -> TPCHData:
    """Generate a dataset; ``scale=1.0`` ≈ 20k lineorder rows."""
    rng = np.random.default_rng(seed)
    n_lo = max(200, int(20_000 * scale))
    # Dimension cardinalities keep the paper's statistical regime rather
    # than TPC-H's exact ratios: every group of the nested queries gets
    # many contributing fact rows per mini-batch, as it does at 1 TB scale
    # (DESIGN.md §2 records this substitution).
    n_cust = max(30, int(600 * scale))
    n_supp = max(10, int(60 * scale))
    n_part = max(15, int(50 * scale))
    n_ps = max(600, int(6_000 * scale))
    n_nation = len(_NATIONS)

    nation = Relation(
        NATION_SCHEMA,
        {
            "nationkey": np.arange(n_nation, dtype=np.int64),
            "n_name": np.array(_NATIONS, dtype=object),
            "regionkey": np.arange(n_nation, dtype=np.int64) % 5,
        },
    )
    customer = Relation(
        CUSTOMER_SCHEMA,
        {
            "custkey": np.arange(n_cust, dtype=np.int64),
            "mktsegment": np.array(rng.choice(_SEGMENTS, n_cust), dtype=object),
            "c_nationkey": rng.integers(0, n_nation, n_cust),
            "acctbal": np.round(rng.uniform(-999.0, 9999.0, n_cust), 2),
            "phonecc": rng.integers(10, 35, n_cust),
        },
    )
    supplier = Relation(
        SUPPLIER_SCHEMA,
        {
            "suppkey": np.arange(n_supp, dtype=np.int64),
            "s_nationkey": rng.integers(0, n_nation, n_supp),
            "s_acctbal": np.round(rng.uniform(-999.0, 9999.0, n_supp), 2),
        },
    )
    part = Relation(
        PART_SCHEMA,
        {
            "partkey": np.arange(n_part, dtype=np.int64),
            "brand": np.array(rng.choice(_BRANDS, n_part), dtype=object),
            "container": np.array(rng.choice(_CONTAINERS, n_part), dtype=object),
            "size": rng.integers(1, 51, n_part),
            "retailprice": np.round(rng.uniform(900.0, 2100.0, n_part), 2),
        },
    )
    ps_part = rng.integers(0, n_part, n_ps)
    ps_supp = rng.integers(0, n_supp, n_ps)
    partsupp = Relation(
        PARTSUPP_SCHEMA,
        {
            "partkey": ps_part,
            "suppkey": ps_supp,
            "availqty": np.round(rng.gamma(4.0, 1200.0, n_ps), 0),
            "supplycost": np.round(rng.uniform(1.0, 1000.0, n_ps), 2),
        },
    )

    n_orders = max(15, n_lo // 200)
    # Order sizes follow a wide lognormal so per-order quantity sums are
    # dispersed — Q18's HAVING threshold then splits orders decisively
    # instead of leaving every group hovering at the boundary.
    sizes = rng.lognormal(mean=np.log(150.0), sigma=0.8, size=n_orders)
    sizes = np.maximum(1, np.round(sizes * n_lo / sizes.sum()).astype(np.int64))
    order_of_line = np.repeat(np.arange(n_orders), sizes)[:n_lo]
    if len(order_of_line) < n_lo:
        extra = rng.integers(0, n_orders, n_lo - len(order_of_line))
        order_of_line = np.concatenate([order_of_line, extra])
    order_of_line = rng.permutation(order_of_line)
    orderdates = rng.integers(0, 2400, n_orders)  # days over ~6.5 years
    order_prio = rng.choice(_PRIORITIES, n_orders)
    cust_of_order = rng.integers(0, n_cust, n_orders)
    ship_lag = rng.integers(1, 122, n_lo)
    quantity = np.round(rng.uniform(1.0, 50.0, n_lo), 0)
    unit_price = rng.uniform(900.0, 2100.0, n_lo)
    lineorder = Relation(
        LINEORDER_SCHEMA,
        {
            "orderkey": order_of_line,
            "linenumber": rng.integers(1, 8, n_lo),
            "custkey": cust_of_order[order_of_line],
            "partkey": rng.integers(0, n_part, n_lo),
            "suppkey": rng.integers(0, n_supp, n_lo),
            "quantity": quantity,
            "extendedprice": np.round(quantity * unit_price, 2),
            "discount": np.round(rng.uniform(0.0, 0.10, n_lo), 2),
            "tax": np.round(rng.uniform(0.0, 0.08, n_lo), 2),
            "returnflag": np.array(rng.choice(_FLAGS, n_lo, p=[0.25, 0.5, 0.25]), dtype=object),
            "linestatus": np.array(rng.choice(_STATUSES, n_lo), dtype=object),
            "shipdate": orderdates[order_of_line] + ship_lag,
            "orderdate": orderdates[order_of_line],
            "shipmode": np.array(rng.choice(_MODES, n_lo), dtype=object),
            "orderpriority": np.array(order_prio[order_of_line], dtype=object),
            "shippriority": np.zeros(n_lo, dtype=np.int64),
        },
    )
    # Dictionary-encode the string key columns at generation: the pages
    # then ride along through every slice/join/group-by downstream.
    return TPCHData(
        encode_relation(lineorder),
        encode_relation(customer),
        encode_relation(supplier),
        encode_relation(nation),
        encode_relation(part),
        encode_relation(partsupp),
    )


def stream_lineorder_chunks(
    total_rows: int, seed: int = 0, chunk_rows: int = 20_000
) -> Iterator[dict[str, np.ndarray]]:
    """Generate ``lineorder`` chunk by chunk for streaming disk ingestion.

    Peak memory is one chunk plus the (tiny) order-level arrays; chunks
    are independent given the seed, so the stream is deterministic and
    restartable. Used by the storage benchmark to build fact tables well
    past what :func:`generate_tpch` should materialize.
    """
    rng = np.random.default_rng(seed)
    n_orders = max(15, total_rows // 200)
    n_cust = max(30, total_rows // 33)
    n_supp = max(10, total_rows // 330)
    n_part = max(15, total_rows // 400)
    orderdates = rng.integers(0, 2400, n_orders)
    order_prio = rng.choice(_PRIORITIES, n_orders)
    cust_of_order = rng.integers(0, n_cust, n_orders)
    for start in range(0, total_rows, chunk_rows):
        n = min(chunk_rows, total_rows - start)
        crng = np.random.default_rng([seed, start])
        order_of_line = crng.integers(0, n_orders, n)
        quantity = np.round(crng.uniform(1.0, 50.0, n), 0)
        unit_price = crng.uniform(900.0, 2100.0, n)
        yield {
            "orderkey": order_of_line,
            "linenumber": crng.integers(1, 8, n),
            "custkey": cust_of_order[order_of_line],
            "partkey": crng.integers(0, n_part, n),
            "suppkey": crng.integers(0, n_supp, n),
            "quantity": quantity,
            "extendedprice": np.round(quantity * unit_price, 2),
            "discount": np.round(crng.uniform(0.0, 0.10, n), 2),
            "tax": np.round(crng.uniform(0.0, 0.08, n), 2),
            "returnflag": np.array(
                crng.choice(_FLAGS, n, p=[0.25, 0.5, 0.25]), dtype=object
            ),
            "linestatus": np.array(crng.choice(_STATUSES, n), dtype=object),
            "shipdate": orderdates[order_of_line] + crng.integers(1, 122, n),
            "orderdate": orderdates[order_of_line],
            "shipmode": np.array(crng.choice(_MODES, n), dtype=object),
            "orderpriority": np.array(order_prio[order_of_line], dtype=object),
            "shippriority": np.zeros(n, dtype=np.int64),
        }
