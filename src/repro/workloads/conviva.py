"""Synthetic Conviva-like video-session workload (Section 8 setup).

The paper's second workload is a 2 TB anonymized video content
distribution log from Conviva Inc. — a denormalized fact table of web
sessions. The schema is described only through the paper's examples
(``session_id``, ``buffer_time``, ``play_time``; queries grouping by
CDN/geography/content and aggregating bitrates and bytes). We generate a
statistically similar sessions table plus a small ``cdn_info`` dimension
(the workload's C11 joins a dimension).

Value model: play time correlates negatively with buffering (the "Slow
Buffering Impact" effect the paper's Example 1 measures), bitrates
cluster by CDN, and bytes follow play time × bitrate — so the workload's
nested queries have real signal, not just noise.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.relational.catalog import Catalog
from repro.relational.relation import Relation
from repro.relational.schema import ColumnType, Schema
from repro.storage.columns import encode_relation

SESSIONS_SCHEMA = Schema(
    [
        ("session_id", ColumnType.INT),
        ("user_id", ColumnType.INT),
        ("state", ColumnType.STRING),
        ("city", ColumnType.STRING),
        ("cdn", ColumnType.STRING),
        ("isp", ColumnType.STRING),
        ("content_id", ColumnType.INT),
        ("buffer_time", ColumnType.FLOAT),
        ("play_time", ColumnType.FLOAT),
        ("join_time", ColumnType.FLOAT),
        ("bitrate", ColumnType.FLOAT),
        ("rebuffer_count", ColumnType.INT),
        ("bytes", ColumnType.FLOAT),
        ("failed", ColumnType.INT),
    ]
)

CDN_INFO_SCHEMA = Schema(
    [
        ("cdn", ColumnType.STRING),
        ("tier", ColumnType.INT),
        ("cost_per_gb", ColumnType.FLOAT),
    ]
)

_CDNS = ["AKAM", "LLNW", "EDGE", "FAST", "CLFR"]
_STATES = [
    "CA", "NY", "TX", "WA", "FL", "IL", "MA", "GA", "PA", "OH",
    "MI", "NC", "VA", "AZ", "CO",
]
_CITIES_PER_STATE = 3
_ISPS = ["COMCAST", "VERIZON", "ATT", "CHARTER", "COX", "FRONTIER"]


@dataclass
class ConvivaData:
    sessions: Relation
    cdn_info: Relation

    def catalog(self) -> Catalog:
        return Catalog({"sessions": self.sessions, "cdn_info": self.cdn_info})


def _zipfish_content(rng: np.random.Generator, n: int, n_content: int) -> np.ndarray:
    """Skewed content popularity: a few hits, a long tail (Zipf-like)."""
    weights = 1.0 / (np.arange(1, n_content + 1) ** 1.1)
    return rng.choice(n_content, size=n, p=weights / weights.sum()).astype(np.int64)


def generate_conviva(scale: float = 1.0, seed: int = 0) -> ConvivaData:
    """Generate a dataset; ``scale=1.0`` ≈ 20k session rows."""
    rng = np.random.default_rng(seed)
    n = max(200, int(20_000 * scale))
    n_users = max(50, n // 10)
    n_content = max(20, int(80 * scale))

    cdn = rng.choice(_CDNS, n, p=[0.3, 0.25, 0.2, 0.15, 0.1])
    cdn_quality = {"AKAM": 1.0, "LLNW": 0.9, "EDGE": 0.75, "FAST": 0.6, "CLFR": 0.5}
    quality = np.array([cdn_quality[c] for c in cdn])

    state_idx = rng.integers(0, len(_STATES), n)
    state = np.array(_STATES, dtype=object)[state_idx]
    city = np.array(
        [f"{_STATES[s]}-C{rng_city}" for s, rng_city in zip(state_idx, rng.integers(0, _CITIES_PER_STATE, n))],
        dtype=object,
    )

    buffer_time = rng.gamma(2.0, 18.0, n) / quality
    join_time = rng.gamma(2.0, 1.2, n) / quality
    # Long buffering suppresses engagement — the SBI effect.
    play_time = rng.gamma(3.0, 120.0, n) * np.exp(-buffer_time / 400.0)
    bitrate = np.maximum(
        200.0, rng.normal(2800.0, 700.0, n) * quality
    )
    rebuffer_count = rng.poisson(buffer_time / 25.0)
    sessions = Relation(
        SESSIONS_SCHEMA,
        {
            "session_id": np.arange(n, dtype=np.int64),
            "user_id": rng.integers(0, n_users, n),
            "state": state,
            "city": city,
            "cdn": np.asarray(cdn, dtype=object),
            "isp": np.array(rng.choice(_ISPS, n), dtype=object),
            "content_id": _zipfish_content(rng, n, n_content),
            "buffer_time": np.round(buffer_time, 2),
            "play_time": np.round(play_time, 2),
            "join_time": np.round(join_time, 3),
            "bitrate": np.round(bitrate, 1),
            "rebuffer_count": rebuffer_count.astype(np.int64),
            "bytes": np.round(play_time * bitrate / 8.0, 0),
            "failed": (rng.random(n) < 0.03).astype(np.int64),
        },
    )
    cdn_info = Relation(
        CDN_INFO_SCHEMA,
        {
            "cdn": np.array(_CDNS, dtype=object),
            "tier": np.array([1, 1, 2, 2, 3], dtype=np.int64),
            "cost_per_gb": np.array([0.032, 0.030, 0.024, 0.02, 0.016]),
        },
    )
    # Dictionary-encode the string key columns: the pages then ride
    # through every batch slice, join, and group-by of the workload runs.
    return ConvivaData(encode_relation(sessions), encode_relation(cdn_info))
