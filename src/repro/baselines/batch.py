"""The batch baseline: a traditional OLAP engine run.

Evaluates the query once over the full dataset (the paper's *baseline*
bars in Figures 7, 9(b) and 9(c)), with wall-clock timing and the shipped
byte accounting of the reference evaluator.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.batching.partitioner import Partitioner
from repro.relational.algebra import PlanNode
from repro.relational.catalog import Catalog
from repro.relational.evaluator import EvalStats, evaluate
from repro.relational.relation import Relation


@dataclass
class BatchRunResult:
    """Outcome of a single batch-mode execution."""

    relation: Relation
    wall_seconds: float
    stats: EvalStats


def run_batch(plan: PlanNode, catalog: Catalog) -> BatchRunResult:
    """Evaluate ``plan`` over the full catalog, timed."""
    stats = EvalStats()
    started = time.perf_counter()
    relation = evaluate(plan, catalog, stats)
    return BatchRunResult(relation, time.perf_counter() - started, stats)


def run_batch_on_fraction(
    plan: PlanNode,
    catalog: Catalog,
    streamed_table: str,
    fraction: float,
    seed: int = 0,
) -> BatchRunResult:
    """Evaluate over a uniform sample of the streamed table.

    Sampled rows are scaled by ``1/fraction`` so SUM/COUNT-style results
    extrapolate — the batch analogue of iOLAP's partial-result semantics,
    used by BlinkDB-style comparisons.
    """
    streamed = catalog.get(streamed_table)
    partitioner = Partitioner(mode="shuffle", seed=seed)
    take = max(1, round(len(streamed) * fraction))
    indices = partitioner.partition_indices(len(streamed), 1)[0][:take]
    sample = streamed.take(indices).scale(len(streamed) / take)
    return run_batch(plan, catalog.replace(streamed_table, sample))
