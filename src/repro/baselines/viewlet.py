"""Viewlet-transformation rewrites (paper Appendix B / DBToaster [10]).

Plan-level rewrites that reduce the state kept by delta-update algorithms.
Combined with the conservative delta rules they yield DBToaster-style
higher-order delta maintenance; iOLAP can apply them too (they are plain
equivalence-preserving rewrites).

Implemented rules (equation numbers from Appendix B):

* (1) query decomposition — push grouped SUM/COUNT below a cross join:
  ``γ_{AB, sum(f1·f2)}(Q1 × Q2) =
  π(γ_{A, sum(f1)}(Q1) × γ_{B, sum(f2)}(Q2))``;
* (2) factorization — pull a common join input out of a union:
  ``(Q ⋈ Q1) ∪ (Q ⋈ Q2) = Q ⋈ (Q1 ∪ Q2)``.

Every rewrite is verified equivalence-preserving by the test suite.
"""

from __future__ import annotations

from repro.relational.aggregates import AggSpec, Count, Sum
from repro.relational.algebra import (
    Aggregate,
    Distinct,
    Join,
    PlanNode,
    Project,
    Rename,
    Scan,
    Select,
    Union,
    transform,
)
from repro.relational.expressions import (
    And,
    Arith,
    Col,
    Comparison,
    Expression,
    Func,
    InList,
    Literal,
    Not,
    Or,
)


def expressions_equal(a: Expression, b: Expression) -> bool:
    """Structural equality of expressions."""
    if type(a) is not type(b):
        return False
    if isinstance(a, Col):
        return a.name == b.name  # type: ignore[union-attr]
    if isinstance(a, Literal):
        return a.value == b.value  # type: ignore[union-attr]
    if isinstance(a, (Arith, Comparison)):
        return a.op == b.op and expressions_equal(a.left, b.left) and expressions_equal(
            a.right, b.right
        )
    if isinstance(a, (And, Or)):
        return expressions_equal(a.left, b.left) and expressions_equal(a.right, b.right)
    if isinstance(a, Not):
        return expressions_equal(a.child, b.child)
    if isinstance(a, InList):
        return a.values == b.values and expressions_equal(a.child, b.child)
    if isinstance(a, Func):
        return (
            a.name == b.name
            and len(a.args) == len(b.args)
            and all(expressions_equal(x, y) for x, y in zip(a.args, b.args))
        )
    return False


def plans_equal(a: PlanNode, b: PlanNode) -> bool:
    """Structural equality of plans (ignores node ids)."""
    if type(a) is not type(b):
        return False
    if isinstance(a, Scan):
        return a.table == b.table and a.schema == b.schema
    if isinstance(a, Select):
        return expressions_equal(a.predicate, b.predicate) and plans_equal(
            a.child, b.child
        )
    if isinstance(a, Project):
        return (
            len(a.outputs) == len(b.outputs)
            and all(
                na == nb and expressions_equal(ea, eb)
                for (na, ea), (nb, eb) in zip(a.outputs, b.outputs)
            )
            and plans_equal(a.child, b.child)
        )
    if isinstance(a, Join):
        return (
            a.keys == b.keys
            and plans_equal(a.left, b.left)
            and plans_equal(a.right, b.right)
        )
    if isinstance(a, Union):
        return plans_equal(a.left, b.left) and plans_equal(a.right, b.right)
    if isinstance(a, Aggregate):
        if a.group_by != b.group_by or len(a.aggs) != len(b.aggs):
            return False
        for sa, sb in zip(a.aggs, b.aggs):
            if sa.name != sb.name or type(sa.func) is not type(sb.func):
                return False
            if (sa.arg is None) != (sb.arg is None):
                return False
            if sa.arg is not None and not expressions_equal(sa.arg, sb.arg):
                return False
        return plans_equal(a.child, b.child)
    if isinstance(a, Rename):
        return a.mapping == b.mapping and plans_equal(a.child, b.child)
    if isinstance(a, Distinct):
        return a.columns == b.columns and plans_equal(a.child, b.child)
    return False


def push_aggregate_below_cross_join(node: PlanNode, schemas) -> PlanNode | None:
    """Appendix B rule (1): decompose a grouped SUM/COUNT over a cross join.

    Applies when the aggregate sits directly on a cross join, each group
    column comes from one input, and every aggregate is a SUM whose
    argument references only one input (or a COUNT). Returns the rewritten
    plan, or ``None`` when the rule does not apply.
    """
    if not isinstance(node, Aggregate) or not isinstance(node.child, Join):
        return None
    join = node.child
    if join.keys:
        return None
    left_cols = set(join.left.output_schema(schemas).names)
    right_cols = set(join.right.output_schema(schemas).names)

    group_left = [g for g in node.group_by if g in left_cols]
    group_right = [g for g in node.group_by if g in right_cols]
    if len(group_left) + len(group_right) != len(node.group_by):
        return None

    left_specs: list[AggSpec] = []
    right_specs: list[AggSpec] = []
    combine: list[tuple[str, Expression]] = []
    for i, spec in enumerate(node.aggs):
        if isinstance(spec.func, Count):
            ln, rn = f"__l{i}", f"__r{i}"
            left_specs.append(AggSpec(ln, Count()))
            right_specs.append(AggSpec(rn, Count()))
            combine.append((spec.name, Col(ln) * Col(rn)))
            continue
        if not isinstance(spec.func, Sum) or spec.arg is None:
            return None
        attrs = spec.attrs()
        if attrs <= left_cols:
            ln, rn = f"__l{i}", f"__r{i}"
            left_specs.append(AggSpec(ln, Sum(), spec.arg))
            right_specs.append(AggSpec(rn, Count()))
            combine.append((spec.name, Col(ln) * Col(rn)))
        elif attrs <= right_cols:
            ln, rn = f"__l{i}", f"__r{i}"
            left_specs.append(AggSpec(ln, Count()))
            right_specs.append(AggSpec(rn, Sum(), spec.arg))
            combine.append((spec.name, Col(ln) * Col(rn)))
        elif isinstance(spec.arg, Arith) and spec.arg.op == "*":
            f1, f2 = spec.arg.left, spec.arg.right
            if f1.attrs() <= left_cols and f2.attrs() <= right_cols:
                pass
            elif f2.attrs() <= left_cols and f1.attrs() <= right_cols:
                f1, f2 = f2, f1
            else:
                return None
            ln, rn = f"__l{i}", f"__r{i}"
            left_specs.append(AggSpec(ln, Sum(), f1))
            right_specs.append(AggSpec(rn, Sum(), f2))
            combine.append((spec.name, Col(ln) * Col(rn)))
        else:
            return None

    left_agg = Aggregate(join.left, group_left, left_specs)
    right_agg = Aggregate(join.right, group_right, right_specs)
    outputs: list[tuple[str, Expression]] = [
        (g, Col(g)) for g in node.group_by
    ] + combine
    return Project(Join(left_agg, right_agg, []), outputs)


def factorize_common_join(node: PlanNode) -> PlanNode | None:
    """Appendix B rule (2): ``(Q ⋈ Q1) ∪ (Q ⋈ Q2) → Q ⋈ (Q1 ∪ Q2)``."""
    if not isinstance(node, Union):
        return None
    l, r = node.left, node.right
    if not (isinstance(l, Join) and isinstance(r, Join)):
        return None
    if l.keys != r.keys:
        return None
    if plans_equal(l.left, r.left):
        return Join(l.left, Union(l.right, r.right), l.keys)
    if plans_equal(l.right, r.right):
        return Join(Union(l.left, r.left), l.right, l.keys)
    return None


def apply_viewlet_rewrites(plan: PlanNode, schemas) -> PlanNode:
    """Apply all viewlet rewrites bottom-up until none fires."""

    def step(node: PlanNode) -> PlanNode | None:
        rewritten = push_aggregate_below_cross_join(node, schemas)
        if rewritten is not None:
            return rewritten
        return factorize_common_join(node)

    previous = plan
    for _ in range(8):  # rewrites strictly shrink opportunities; 8 is plenty
        rewritten = transform(previous, step)
        if plans_equal(rewritten, previous):
            return rewritten
        previous = rewritten
    return previous
