"""Comparators: batch baseline, HDA higher-order delta, viewlet rewrites."""

from repro.baselines.batch import BatchRunResult, run_batch, run_batch_on_fraction
from repro.baselines.hda import HDAExecutor, HDAPartial
from repro.baselines.viewlet import (
    apply_viewlet_rewrites,
    expressions_equal,
    factorize_common_join,
    plans_equal,
    push_aggregate_below_cross_join,
)

__all__ = [
    "BatchRunResult",
    "HDAExecutor",
    "HDAPartial",
    "apply_viewlet_rewrites",
    "expressions_equal",
    "factorize_common_join",
    "plans_equal",
    "push_aggregate_below_cross_join",
    "run_batch",
    "run_batch_on_fraction",
]
