"""HDA — the higher-order delta comparator (DBToaster-style).

The paper compares iOLAP against "the higher-order delta update algorithm
of DBToaster, without code generation and indexes" (Section 8). This
module reimplements it on our substrate, mirroring that setup:

* the *innermost* aggregate blocks over the streamed table (those whose
  subtree contains no other aggregate) are maintained incrementally with
  the classical Figure-1 delta rules — each batch folds only ΔD into
  their sketches;
* everything above them (the "outer query") is re-evaluated from scratch
  over all data accumulated so far, because the classical rules cannot
  express a delta for predicates over a changed aggregate. This is the
  per-batch cost that grows linearly with processed data — the effect
  Figures 8(a)–(d) quantify;
* optionally, the Appendix-B viewlet rewrites are applied first.

For flat SPJA queries the outer query degenerates to reading the
maintained view, so HDA matches iOLAP's per-batch cost — exactly the
paper's observation that both collapse to classical delta processing.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Iterator

from repro.batching.partitioner import Partitioner
from repro.baselines.viewlet import apply_viewlet_rewrites
from repro.core.sketch import AggBundle
from repro.metrics.stats import BatchMetrics, RunMetrics
from repro.relational.aggregates import AggSpec
from repro.relational.algebra import Aggregate, PlanNode, Scan, transform
from repro.relational.catalog import Catalog
from repro.relational.evaluator import EvalStats, evaluate
from repro.relational.relation import Relation
from repro.relational.schema import Schema

import numpy as np


@dataclass
class HDAPartial:
    """HDA's partial answer after one batch."""

    batch_no: int
    num_batches: int
    relation: Relation
    metrics: BatchMetrics
    is_final: bool


class _MaintainedView:
    """One incrementally maintained innermost aggregate."""

    def __init__(self, node: Aggregate, view_table: str, schema: Schema):
        self.node = node
        self.view_table = view_table
        self.schema = schema
        self.bundle = AggBundle(node.aggs, num_trials=0)

    def fold_delta(self, delta_catalog: Catalog) -> int:
        """Evaluate the block subtree on ΔD only and fold it in."""
        stats = EvalStats()
        delta_rows = evaluate(self.node.child, delta_catalog, stats)
        self.bundle.fold(delta_rows, self.node.group_by)
        return stats.rows_processed

    def materialize(self, scale: float) -> Relation:
        """Current view contents, extrapolated by ``m_i``."""
        g = len(self.bundle)
        cols: dict[str, np.ndarray] = {}
        schema_cols = []
        for gi, name in enumerate(self.node.group_by):
            ctype = self.schema.type_of(name)
            schema_cols.append((name, ctype))
            cols[name] = np.array(
                [k[gi] for k in self.bundle.keys], dtype=ctype.dtype
            )
        for s, spec in enumerate(self.node.aggs):
            schema_cols.append((spec.name, spec.func.output_type))
            values, _ = self.bundle.finalize(s, scale)
            cols[spec.name] = values
        return Relation(Schema(schema_cols), cols, np.ones(g))

    def state_bytes(self) -> int:
        return self.bundle.estimated_bytes()


class HDAExecutor:
    """Runs a query with higher-order delta maintenance, batch by batch."""

    def __init__(
        self,
        catalog: Catalog,
        streamed_table: str,
        seed: int = 0,
        use_viewlet_rewrites: bool = True,
        partition_mode: str = "shuffle",
    ):
        self.catalog = catalog
        self.streamed_table = streamed_table
        self.seed = seed
        self.use_viewlet_rewrites = use_viewlet_rewrites
        self.partitioner = Partitioner(mode=partition_mode, seed=seed)
        self.metrics = RunMetrics()

    # -- compilation --------------------------------------------------------------------

    def _split(self, plan: PlanNode) -> tuple[PlanNode, list[_MaintainedView]]:
        """Replace innermost stream aggregates with view scans."""
        schemas = self.catalog.schemas()
        if self.use_viewlet_rewrites:
            plan = apply_viewlet_rewrites(plan, schemas)
        views: list[_MaintainedView] = []

        def maybe_replace(node: PlanNode) -> PlanNode | None:
            if not isinstance(node, Aggregate):
                return None
            if self.streamed_table not in node.base_tables():
                return None
            has_inner_blocks = any(
                isinstance(n, Aggregate)
                or (isinstance(n, Scan) and n.table.startswith("__hda_view_"))
                for n in node.child.walk()
            )
            if has_inner_blocks:
                return None  # not innermost; the outer query recomputes it
            view_table = f"__hda_view_{len(views)}"
            schema = node.output_schema(schemas)
            views.append(_MaintainedView(node, view_table, schema))
            return Scan(view_table, schema)

        outer = transform(plan, maybe_replace)
        return outer, views

    # -- execution ------------------------------------------------------------------------

    def run(self, plan: PlanNode, num_batches: int) -> Iterator[HDAPartial]:
        streamed = self.catalog.get(self.streamed_table)
        batches = self.partitioner.partition(streamed, num_batches)
        outer_plan, views = self._split(plan)
        outer_reads_data = bool(
            self.streamed_table in outer_plan.base_tables()
            or not isinstance(outer_plan, Scan)
        )
        self.metrics = RunMetrics()

        accumulated: Relation | None = None
        total = len(streamed)
        seen = 0
        for i, delta in enumerate(batches, start=1):
            bm = self.metrics.start_batch(i)
            started = time.perf_counter()
            bm.new_tuples = len(delta)
            seen += len(delta)
            scale = total / seen if seen else 1.0
            accumulated = delta if accumulated is None else accumulated.concat(delta)

            delta_catalog = self.catalog.replace(self.streamed_table, delta)
            run_catalog = self.catalog.replace(
                self.streamed_table, accumulated.scale(scale)
            )
            for view in views:
                bm.recomputed_tuples += 0  # folding ΔD is new work, not recompute
                view.fold_delta(delta_catalog)
                run_catalog.register(view.view_table, view.materialize(scale))
                bm.add_state(f"view:{view.view_table}", view.state_bytes())

            if outer_reads_data:
                stats = EvalStats()
                result = evaluate(outer_plan, run_catalog, stats)
                # Everything the outer query touches beyond this batch's
                # delta is recomputation of previously processed data.
                bm.recomputed_tuples += max(0, stats.rows_processed - len(delta))
                bm.shipped_bytes += stats.bytes_shipped
            else:
                result = run_catalog.get(outer_plan.table)  # type: ignore[attr-defined]
                bm.shipped_bytes += result.estimated_bytes()

            # The accumulated relation is operator state the classical
            # rules must keep to re-evaluate the outer query.
            if outer_reads_data and self.streamed_table in outer_plan.base_tables():
                bm.add_state("accumulated", accumulated.estimated_bytes())

            bm.wall_seconds = time.perf_counter() - started
            yield HDAPartial(
                i, len(batches), result, bm, is_final=(i == len(batches))
            )

    def run_to_completion(self, plan: PlanNode, num_batches: int) -> HDAPartial:
        last: HDAPartial | None = None
        for last in self.run(plan, num_batches):
            pass
        assert last is not None
        return last
