"""Fault-plan specs: which faults to inject, where, and how often.

A plan is a comma-separated list of specs, each::

    kind@batch[:target][*times]

* ``kind``    — ``sentinel`` (force a variation-range integrity failure),
  ``batch`` (force one at the controller level, before any unit runs),
  ``unit`` (raise a transient executor-unit failure), ``checkpoint``
  (corrupt the checkpoint taken at that batch), or ``shard`` (kill one
  shard worker process before that batch; the shard scheduler respawns
  it and replays its sub-stream — single-shard recovery).
* ``batch``   — the 1-based mini-batch the fault arms at.
* ``target``  — optional operator/unit label substring the fault is
  restricted to (e.g. ``select:3``, ``aggregate``); note the label may
  itself contain ``:``, so everything after the first ``:`` is target.
  For ``shard`` faults the target is the decimal shard index to kill
  (default: shard 0).
* ``times``   — optional ``*N`` repeat count (default 1): the fault fires
  on the first N matching probes, then disarms.

Examples::

    sentinel@16                 # integrity failure at batch 16
    sentinel@16:select:3        # ... only in operator select:3
    batch@4                     # controller-level failure at batch 4
    unit@5:aggregate*2          # fail aggregate units twice at batch 5
    checkpoint@12               # corrupt the checkpoint taken at batch 12
    shard@6:1                   # kill shard worker 1 before batch 6
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ReproError

#: The closed set of fault kinds a spec may name.
FAULT_KINDS = frozenset({"sentinel", "batch", "unit", "checkpoint", "shard"})


@dataclass(frozen=True)
class FaultSpec:
    """One armed fault: ``kind@batch[:target][*times]``."""

    kind: str
    batch: int
    target: str | None = None
    times: int = 1

    def __str__(self) -> str:
        text = f"{self.kind}@{self.batch}"
        if self.target is not None:
            text += f":{self.target}"
        if self.times != 1:
            text += f"*{self.times}"
        return text


@dataclass(frozen=True)
class FaultPlan:
    """An immutable collection of fault specs (one injector arming)."""

    specs: tuple[FaultSpec, ...] = field(default_factory=tuple)

    def __str__(self) -> str:
        return ",".join(str(spec) for spec in self.specs)

    def __len__(self) -> int:
        return len(self.specs)


def parse_fault(text: str) -> FaultSpec:
    """Parse one ``kind@batch[:target][*times]`` spec."""
    spec = text.strip()
    if "@" not in spec:
        raise ReproError(f"bad fault spec {text!r}: expected kind@batch[...]")
    kind, _, rest = spec.partition("@")
    kind = kind.strip()
    if kind not in FAULT_KINDS:
        raise ReproError(
            f"bad fault spec {text!r}: unknown kind {kind!r} "
            f"(expected one of {sorted(FAULT_KINDS)})"
        )
    times = 1
    if "*" in rest:
        rest, _, times_text = rest.rpartition("*")
        try:
            times = int(times_text)
        except ValueError:
            raise ReproError(
                f"bad fault spec {text!r}: repeat count {times_text!r} "
                "is not an integer"
            ) from None
        if times < 1:
            raise ReproError(f"bad fault spec {text!r}: repeat count must be >= 1")
    batch_text, _, target = rest.partition(":")
    try:
        batch = int(batch_text)
    except ValueError:
        raise ReproError(
            f"bad fault spec {text!r}: batch {batch_text!r} is not an integer"
        ) from None
    if batch < 1:
        raise ReproError(f"bad fault spec {text!r}: batch must be >= 1")
    target = target.strip() or None
    if target is not None and kind in ("batch", "checkpoint"):
        raise ReproError(
            f"bad fault spec {text!r}: {kind!r} faults take no target"
        )
    return FaultSpec(kind, batch, target, times)


def parse_faults(text: str) -> FaultPlan:
    """Parse a comma-separated fault plan (empty string = empty plan)."""
    specs = tuple(
        parse_fault(part) for part in text.split(",") if part.strip()
    )
    return FaultPlan(specs)


def as_plan(value: object) -> FaultPlan:
    """Coerce ``OnlineConfig.faults`` (spec string or plan) to a plan."""
    if isinstance(value, FaultPlan):
        return value
    if isinstance(value, str):
        return parse_faults(value)
    raise ReproError(
        f"faults must be a spec string or FaultPlan, got {type(value).__name__}"
    )
