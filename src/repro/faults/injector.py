"""The fault injector: deterministic failures at designated engine seams.

The injector holds an armed :class:`~repro.faults.plan.FaultPlan` and is
probed from three seams:

* **sentinel / batch** — :meth:`FaultInjector.fire` from
  ``RuntimeContext.fault``: raises a
  :class:`~repro.errors.RangeIntegrityError` exactly like a real
  variation-range violation, with ``recover_from_batch = batch - 1`` (no
  actual decision flipped, so the immediately preceding batch is
  consistent). Guarded against firing during a recovery replay — a raise
  there would escape the controller's handler, and re-faulting the replay
  of an already-faulted batch would livelock recovery.
* **unit** — also via :meth:`fire`, from the executors *before* the unit
  body runs: raises a :class:`~repro.errors.TransientUnitError`, which
  the executor's retry policy absorbs (so a fault with ``*times`` up to
  ``OnlineConfig.unit_retry_attempts`` is invisible in the results).
* **checkpoint** — :meth:`claim` from the controller after taking a
  checkpoint: returns True when the checkpoint should be corrupted
  (exercising recovery's fall-back to the next-older snapshot).

Every probe is threadsafe (the parallel executor probes from worker
threads); a fired spec decrements its remaining count under the lock, so
``times`` is honored globally, not per thread.
"""

from __future__ import annotations

import threading

from repro.errors import RangeIntegrityError, ReproError, TransientUnitError
from repro.faults.plan import FaultPlan, FaultSpec


class FaultInjector:
    """Arms a fault plan and fires matching faults when probed."""

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self._lock = threading.Lock()
        self._remaining = [spec.times for spec in plan.specs]
        #: Log of fired faults (spec, batch) in firing order, for tests
        #: and the trace timeline.
        self.fired: list[tuple[FaultSpec, int]] = []

    def claim(self, kind: str, batch: int, label: str | None = None) -> bool:
        """Consume one armed firing matching (kind, batch, label)."""
        with self._lock:
            for i, spec in enumerate(self.plan.specs):
                if spec.kind != kind or self._remaining[i] <= 0:
                    continue
                if spec.batch != batch:
                    continue
                if spec.target is not None and (
                    label is None or spec.target not in label
                ):
                    continue
                self._remaining[i] -= 1
                self.fired.append((spec, batch))
                return True
        return False

    def fire(self, point: str, ctx, label: str | None = None) -> None:
        """Probe from an engine seam; raises when an armed fault matches."""
        if point in ("sentinel", "batch"):
            if ctx.monitor.replaying:
                return
            if self.claim(point, ctx.batch_no, label):
                ctx.monitor.record_failure()
                where = f" in {label}" if label else ""
                raise RangeIntegrityError(
                    f"injected {point} fault at batch {ctx.batch_no}{where}",
                    recover_from_batch=ctx.batch_no - 1,
                )
        elif point == "unit":
            if self.claim("unit", ctx.batch_no, label):
                raise TransientUnitError(
                    f"injected unit fault at batch {ctx.batch_no} ({label})"
                )
        else:
            raise ReproError(f"unknown fault point {point!r}")

    def exhausted(self) -> bool:
        """True once every armed firing has been consumed."""
        with self._lock:
            return not any(self._remaining)
