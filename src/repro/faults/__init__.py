"""Deterministic fault injection for the online engine.

Incremental engines live or die by their recovery paths, and recovery
paths rot unless they are exercised on purpose. This package arms
deterministic faults at the engine's three recovery seams — variation-
range integrity (sentinel/batch faults), executor units (transient
failures absorbed by the retry policy), and state checkpoints (corruption
forcing fall-back to an older snapshot) — from a compact spec wired
through ``OnlineConfig(faults=...)`` or the CLI ``--faults`` flag::

    iolap run ... --faults "sentinel@16,unit@5:aggregate*2,checkpoint@12"

The chaos test suite (``tests/test_chaos.py``) runs every workload query
under injected faults and asserts the final results match the fault-free
run — the executable form of the paper's Section 5.1 claim that recovery
preserves Theorem 1.
"""

from repro.faults.injector import FaultInjector
from repro.faults.plan import (
    FAULT_KINDS,
    FaultPlan,
    FaultSpec,
    as_plan,
    parse_fault,
    parse_faults,
)

__all__ = [
    "FAULT_KINDS",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "as_plan",
    "parse_fault",
    "parse_faults",
]
