"""The execution layer: batch executors scheduling compiled units."""

from repro.engine.executor import (
    BatchExecutor,
    ParallelExecutor,
    SerialExecutor,
    make_executor,
)

__all__ = [
    "BatchExecutor",
    "ParallelExecutor",
    "SerialExecutor",
    "make_executor",
]
