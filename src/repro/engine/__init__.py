"""The execution layer: batch executors scheduling compiled units.

``repro.engine.shards`` adds the scale-out tier: a sharded engine that
hash-partitions the stream across worker processes and merges per-batch
results deterministically (imported lazily here to keep the serial
import path free of multiprocessing).
"""

from repro.engine.executor import (
    BatchExecutor,
    ParallelExecutor,
    SerialExecutor,
    make_executor,
)

__all__ = [
    "BatchExecutor",
    "ParallelExecutor",
    "SerialExecutor",
    "ShardedQueryEngine",
    "make_executor",
]


def __getattr__(name: str):
    if name == "ShardedQueryEngine":
        from repro.engine.shards import ShardedQueryEngine

        return ShardedQueryEngine
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
