"""The shard scheduler: N worker processes, one deterministic merge sink.

:class:`ShardedQueryEngine` is a drop-in facade over
:class:`~repro.core.controller.OnlineQueryEngine`: same constructor
shape, same ``run``/``run_to_completion`` surface, same
:class:`PartialResult` stream. When the plan admits group-key sharding
(see :mod:`.planner`) it hash-partitions the streamed table across
``OnlineConfig.shards`` worker processes and merges their per-batch
results at the sink; otherwise it falls back to single-process execution
(bit-identity then holds trivially) after recording a
``shard-fallback`` trace warning.

Merge discipline (the PR 1/3 determinism contract, extended):

* **group-by partials merge by key** — shards own disjoint group sets,
  so the merge is a disjoint union, checked against the plan's
  shard-key result columns and ordered canonically;
* **holistic/quantile sinks merge at trial level** — result cells keep
  their full per-trial arrays across the pipe, nothing is collapsed
  before the merge;
* **metrics merge in shard-index order** via
  :meth:`BatchMetrics.merge_from`, exactly like the parallel executor's
  unit-index-ordered scratch merges.

The ``shard`` fault kind is handled here: before dispatching a batch the
scheduler claims ``shard@batch:index`` faults, kills the targeted worker
process, respawns it, and replays its sub-stream deterministically —
single-shard recovery; the surviving shards' state is never touched.
"""

from __future__ import annotations

import multiprocessing as mp
import time
from typing import Iterator

from repro.batching.partitioner import Partitioner
from repro.core.blocks import OnlineConfig
from repro.core.compiler import compile_online
from repro.core.result import PartialResult, _key
from repro.engine.executor import BatchExecutor, SerialExecutor
from repro.engine.shards.envelope import (
    BatchTask,
    InitTask,
    ShardFailure,
    ShardResult,
    ShardSpec,
    StopTask,
)
from repro.engine.shards.planner import ShardPlan, analyze_shardability
from repro.engine.shards.worker import worker_main
from repro.errors import ReproError
from repro.metrics.stats import RunMetrics
from repro.obs.session import NULL_OBS
from repro.relational.algebra import PlanNode
from repro.relational.catalog import Catalog
from repro.core.values import UncertainValue


def _mp_context():
    """Prefer fork (cheap, Linux); fall back to spawn elsewhere."""
    methods = mp.get_all_start_methods()
    return mp.get_context("fork" if "fork" in methods else "spawn")


class _WorkerHandle:
    """One worker process + its pipe, initialized and ready for batches."""

    def __init__(self, ctx, init: InitTask):
        parent_conn, child_conn = ctx.Pipe()
        self.conn = parent_conn
        # The InitTask rides along as a process argument: under fork the
        # catalog is inherited copy-on-write (no pickle on either side);
        # under spawn it is pickled once, same as a pipe send would cost.
        self.proc = ctx.Process(
            target=worker_main,
            args=(child_conn, init),
            name=f"iolap-shard-{init.shard.index}",
            daemon=True,
        )
        self.proc.start()
        child_conn.close()

    def kill(self) -> None:
        """Hard-kill (the shard fault): no goodbye, no state flush."""
        self.proc.kill()
        self.proc.join()
        self.conn.close()

    def stop(self) -> None:
        """Orderly shutdown; escalates to terminate if the pipe is gone."""
        try:
            self.conn.send(StopTask())
        except (BrokenPipeError, OSError):
            pass
        self.proc.join(timeout=10)
        if self.proc.is_alive():
            self.proc.terminate()
            self.proc.join()
        self.conn.close()


class ShardedQueryEngine:
    """Runs queries online across N shared-nothing shard processes."""

    def __init__(
        self,
        catalog: Catalog,
        streamed_table: str,
        config: OnlineConfig | None = None,
        partition_mode: str = "shuffle",
        executor: str | BatchExecutor = "serial",
        obs=None,
    ):
        self.catalog = catalog
        self.streamed_table = streamed_table
        self.config = config if config is not None else OnlineConfig()
        self.partition_mode = partition_mode
        #: Executor spec forwarded to the workers (and to the fallback
        #: engine). Instances cannot cross the process boundary, so only
        #: names are forwarded; an instance forces single-process mode.
        self._executor_spec = executor
        self.obs = obs if obs is not None else NULL_OBS
        self.metrics = RunMetrics()
        #: The scheduler itself runs no units; a no-op executor keeps the
        #: OnlineQueryEngine facade (``engine.executor.close()``) intact.
        #: The fallback path swaps in the inner engine's executor.
        self.executor: BatchExecutor = SerialExecutor()
        self.profiler = None
        #: The ShardPlan of the most recent run (None before any run).
        self.shard_plan: ShardPlan | None = None
        #: Worker respawns performed by the shard fault path (per run).
        self.shard_respawns = 0
        #: Cumulative CPU seconds per worker process (shard index ->
        #: latest ``process_time`` reported). The scaling benchmark's
        #: critical path is ``parent_cpu + max(shard_cpu_seconds)``.
        self.shard_cpu_seconds: dict[int, float] = {}

    @property
    def shards(self) -> int:
        return max(int(self.config.shards), 1)

    def run(
        self,
        plan: PlanNode,
        num_batches: int,
        batch_rows: int | None = None,
    ) -> Iterator[PartialResult]:
        """Execute ``plan`` online; yields one merged result per batch."""
        shard_plan = analyze_shardability(plan, self.streamed_table)
        self.shard_plan = shard_plan
        tracer = self.obs.tracer
        if (
            self.shards <= 1
            or not shard_plan.shardable
            or isinstance(self._executor_spec, BatchExecutor)
        ):
            if self.shards > 1:
                reason = shard_plan.reason or "executor instance pinned"
                tracer.warning(
                    "shard-fallback",
                    message=f"plan is not shardable ({reason}); running "
                    "single-process",
                    reason=reason,
                )
            yield from self._run_fallback(plan, num_batches, batch_rows)
            return
        yield from self._run_sharded(plan, shard_plan, num_batches, batch_rows)

    def run_to_completion(
        self,
        plan: PlanNode,
        num_batches: int,
        batch_rows: int | None = None,
    ) -> PartialResult:
        """Convenience: run all batches, return the final (exact) result."""
        last: PartialResult | None = None
        for last in self.run(plan, num_batches, batch_rows=batch_rows):
            pass
        if last is None:
            raise ReproError("streamed table is empty")
        return last

    # -- single-process fallback ---------------------------------------------------

    def _run_fallback(
        self, plan: PlanNode, num_batches: int, batch_rows: int | None
    ) -> Iterator[PartialResult]:
        from repro.core.controller import OnlineQueryEngine

        inner = OnlineQueryEngine(
            self.catalog,
            self.streamed_table,
            config=self.config,
            partition_mode=self.partition_mode,
            executor=self._executor_spec,
            obs=self.obs,
        )
        self.executor = inner.executor
        self.metrics = inner.metrics
        for partial in inner.run(plan, num_batches, batch_rows=batch_rows):
            self.metrics = inner.metrics
            self.profiler = inner.profiler
            yield partial

    # -- the sharded path ----------------------------------------------------------

    def _run_sharded(
        self,
        plan: PlanNode,
        shard_plan: ShardPlan,
        num_batches: int,
        batch_rows: int | None,
    ) -> Iterator[PartialResult]:
        streamed = self.catalog.get(self.streamed_table)
        if batch_rows is not None:
            from repro.batching.partitioner import num_batches_for

            num_batches = num_batches_for(len(streamed), batch_rows)
        # The parent needs only the global batch *sizes* (for
        # fraction_processed); workers re-derive the identical batch
        # relations from the same seeded partitioner, so no batch is ever
        # materialized on this side of the pipe.
        partitioner = Partitioner(
            mode=self.partition_mode, seed=self.config.seed
        )
        batch_sizes = [
            len(ix)
            for ix in partitioner.partition_indices(len(streamed), num_batches)
        ]
        compiled = compile_online(plan, self.catalog, self.streamed_table)
        self.metrics = RunMetrics()
        self.shard_respawns = 0
        self.shard_cpu_seconds = {}

        injector = None
        if self.config.faults:
            from repro.faults import FaultInjector, as_plan

            injector = FaultInjector(as_plan(self.config.faults))

        obs = self.obs
        tracer = obs.tracer
        mp_ctx = _mp_context()
        tables = {name: self.catalog.get(name) for name in self.catalog}
        inits = [
            InitTask(
                tables=tables,
                streamed_table=self.streamed_table,
                plan=plan,
                config=self.config,
                num_batches=len(batch_sizes),
                partition_mode=self.partition_mode,
                executor=self._executor_spec,
                shard=ShardSpec(
                    index=s, count=self.shards, key=shard_plan.shard_key
                ),
                collect_counters=obs.enabled,
            )
            for s in range(self.shards)
        ]
        run_span = tracer.span(
            "run", cat="run",
            streamed_table=self.streamed_table,
            num_batches=len(batch_sizes),
            total_rows=len(streamed),
            executor=f"sharded({self.shards})",
            shard_key=",".join(shard_plan.shard_key),
        ) if tracer.enabled else None
        if run_span:
            run_span.__enter__()
        workers = [_WorkerHandle(mp_ctx, init) for init in inits]
        seen_rows = 0
        try:
            for i in range(1, len(batch_sizes) + 1):
                if injector is not None:
                    self._fire_shard_faults(workers, mp_ctx, inits, injector, i)
                bm = self.metrics.start_batch(i)
                started = time.perf_counter()
                for handle in workers:
                    handle.conn.send(BatchTask(i))
                results = []
                for s, handle in enumerate(workers):
                    reply = handle.conn.recv()
                    if isinstance(reply, ShardFailure):
                        raise ReproError(
                            f"shard {s} failed at batch {reply.batch_no} "
                            f"({reply.kind}: {reply.message})\n"
                            f"{reply.traceback}"
                        )
                    results.append(reply)
                rows = _merge_rows(results, shard_plan.result_key_cols)
                for r in results:
                    bm.merge_from(r.metrics)
                    self.shard_cpu_seconds[r.shard_index] = r.cpu_seconds
                bm.wall_seconds = time.perf_counter() - started
                seen_rows += batch_sizes[i - 1]
                if obs.enabled:
                    self._sample_shard_metrics(results, i)
                is_final = i == len(batch_sizes)
                yield PartialResult(
                    batch_no=i,
                    num_batches=len(batch_sizes),
                    fraction_processed=seen_rows / max(len(streamed), 1),
                    schema=compiled.result_schema,
                    rows=rows,
                    metrics=bm,
                    is_final=is_final,
                )
        finally:
            for handle in workers:
                handle.stop()
            if run_span:
                run_span.__exit__(None, None, None)
            obs.flush()

    def _fire_shard_faults(
        self, workers, mp_ctx, inits, injector, batch_no: int
    ) -> None:
        """Kill+respawn any worker a ``shard@batch[:index]`` fault targets.

        Single-shard recovery: the respawned worker replays its own
        sub-stream (deterministically identical to the lost state) while
        every other shard's state is left untouched.
        """
        tracer = self.obs.tracer
        for s in range(len(workers)):
            if not injector.claim("shard", batch_no, label=str(s)):
                continue
            tracer.warning(
                "shard-killed", batch=batch_no, shard=s,
                message=f"injected shard fault: killing worker {s} "
                f"before batch {batch_no}",
            )
            workers[s].kill()
            handle = _WorkerHandle(mp_ctx, inits[s])
            # Deterministic replay of the shard's processed prefix; the
            # result envelopes are discarded (replay=True).
            for b in range(1, batch_no):
                handle.conn.send(BatchTask(b, replay=True))
                reply = handle.conn.recv()
                if isinstance(reply, ShardFailure):
                    raise ReproError(
                        f"shard {s} failed replaying batch {b} after "
                        f"respawn ({reply.kind}: {reply.message})\n"
                        f"{reply.traceback}"
                    )
            workers[s] = handle
            self.shard_respawns += 1
            self.obs.metrics.counter("shard.respawns").inc()

    def _sample_shard_metrics(self, results: list[ShardResult], batch_no: int) -> None:
        """Per-shard span tracks + counters merged into the run trace."""
        obs = self.obs
        tracer = obs.tracer
        reg = obs.metrics
        for r in results:
            if tracer.enabled:
                with tracer.span(
                    "shard-batch", cat="shard", batch=batch_no,
                    shard=r.shard_index,
                ) as span:
                    span.set(
                        rows=len(r.rows),
                        new_tuples=r.metrics.new_tuples,
                        unit_seconds=r.metrics.unit_seconds,
                        recovered=r.metrics.recovered,
                        cpu_seconds=r.cpu_seconds,
                    )
            for name, value in r.counters.items():
                reg.gauge(f"shard.{r.shard_index}.{name}").set(value)
            reg.gauge(f"shard.{r.shard_index}.cpu_seconds").set(r.cpu_seconds)
        obs.emit_metrics(batch=batch_no)
        obs.flush()


def _merge_rows(
    results: list[ShardResult], key_cols: tuple[str, ...]
) -> list[dict[str, object]]:
    """Disjoint union of per-shard result rows in canonical order.

    Group-key sharding guarantees shards publish disjoint group sets;
    ``key_cols`` (the result columns with shard-key provenance) back an
    explicit check of that invariant. Rows are ordered canonically (the
    ``sorted_plain_rows`` key over every column) so the merged stream is
    independent of shard count and arrival order.
    """
    rows: list[dict[str, object]] = []
    if key_cols:
        seen: dict[tuple, int] = {}
        for r in results:
            for row in r.rows:
                key = tuple(_point(row[c]) for c in key_cols)
                owner = seen.setdefault(key, r.shard_index)
                if owner != r.shard_index:
                    raise ReproError(
                        f"shard merge invariant violated: group {key!r} "
                        f"published by shards {owner} and {r.shard_index}"
                    )
    for r in results:
        rows.extend(r.rows)
    rows.sort(
        key=lambda row: tuple(_key(_point(v)) for v in row.values())
    )
    return rows


def _point(value: object) -> object:
    return value.value if isinstance(value, UncertainValue) else value
