"""The shard worker: a full shared-nothing engine over one sub-stream.

Each worker process runs the *complete* online delta algorithm — its own
compiled plan, operator state stores, sentinels, range monitor, and
per-shard :class:`~repro.state.CheckpointManager` — over the rows whose
shard-key hash it owns. Nothing is shared with the parent or siblings;
the only coordination is the batch-step protocol over the pipe.

Determinism is inherited, not re-derived: the worker partitions the
*full* stream with the same seeded partitioner the serial engine uses
and draws the *full* batch's bootstrap trial matrix from the same
``(seed, table, batch)`` ``SeedSequence`` scheme, then selects its owned
rows (with their trial rows) by the stable shard hash. Group-key
sharding (see :mod:`.planner`) guarantees each owned group receives
exactly the serial row sequence, so every per-group float accumulation
is bit-identical to the serial reference. Range-integrity recovery runs
entirely inside the worker — restore from the shard's own checkpoint
ring, replay the shard's own suffix — giving single-shard recovery.
"""

from __future__ import annotations

import time
import traceback

from repro.bootstrap.poisson import trial_multiplicities
from repro.core.blocks import OnlineConfig, RuntimeContext
from repro.core.controller import OnlineQueryEngine
from repro.engine.shards.envelope import (
    BatchTask,
    InitTask,
    ShardFailure,
    ShardResult,
    ShardSpec,
    StopTask,
    shard_ids,
)
from repro.metrics.stats import BatchMetrics
from repro.relational.catalog import Catalog
from repro.relational.relation import Relation


class ShardRuntimeContext(RuntimeContext):
    """A runtime context that sees only its shard's rows of each batch.

    Row accounting is deliberately two-faced: ``seen_rows`` advances by
    the *global* batch size so the extrapolation factor ``scale`` matches
    the serial engine bit for bit, while per-batch metrics count
    shard-local rows so per-shard counters sum to the serial totals.
    """

    def __init__(
        self,
        statics: Catalog,
        streamed_table: str,
        total_rows: int,
        config: OnlineConfig,
        shard: ShardSpec,
    ):
        super().__init__(statics, streamed_table, total_rows, config)
        self.shard = shard

    def begin_batch(
        self, batch_no: int, delta: Relation, metrics: BatchMetrics
    ) -> None:
        self.batch_no = batch_no
        self.metrics = metrics
        # Full-batch draws first (identical to serial), then select the
        # owned rows together with their trial rows — original order
        # preserved, so each group's row sequence matches serial exactly.
        trials = trial_multiplicities(
            len(delta),
            self.config.num_trials,
            self.config.seed,
            self.streamed_table,
            batch_no,
        )
        tagged = delta.with_mult(delta.mult, trials)
        owned = shard_ids(delta, self.shard.key, self.shard.count)
        self._delta = tagged.filter(owned == self.shard.index)
        self.seen_rows += len(delta)
        metrics.new_tuples += len(self._delta)


class ShardWorkerEngine(OnlineQueryEngine):
    """The in-worker engine: a stock controller over a shard context."""

    def __init__(
        self,
        catalog: Catalog,
        streamed_table: str,
        config: OnlineConfig,
        partition_mode: str,
        executor: str,
        shard: ShardSpec,
    ):
        super().__init__(
            catalog,
            streamed_table,
            config=config,
            partition_mode=partition_mode,
            executor=executor,
        )
        self.shard = shard
        self.checkpoint_namespace = f"shard{shard.index}"

    def _make_context(self, total_rows: int) -> RuntimeContext:
        return ShardRuntimeContext(
            self.catalog,
            self.streamed_table,
            total_rows,
            self.config,
            self.shard,
        )


def worker_main(conn, init: InitTask) -> None:
    """Worker process entry point: an inherited InitTask, then batch steps."""
    session = None
    try:
        engine = ShardWorkerEngine(
            Catalog(init.tables),
            init.streamed_table,
            init.config,
            init.partition_mode,
            init.executor,
            init.shard,
        )
        session = engine.open_run(init.plan, init.num_batches)
        while True:
            task = conn.recv()
            if isinstance(task, StopTask):
                break
            assert isinstance(task, BatchTask)
            try:
                partial = session.process(task.batch_no)
            except BaseException as exc:  # noqa: BLE001 — shipped to parent
                conn.send(
                    ShardFailure(
                        shard_index=init.shard.index,
                        batch_no=task.batch_no,
                        kind=type(exc).__name__,
                        message=str(exc),
                        traceback=traceback.format_exc(),
                    )
                )
                break
            conn.send(
                ShardResult(
                    shard_index=init.shard.index,
                    batch_no=task.batch_no,
                    rows=partial.rows,
                    metrics=partial.metrics,
                    counters=(
                        _shard_counters(session)
                        if init.collect_counters
                        else {}
                    ),
                    cpu_seconds=time.process_time(),
                )
            )
    except (EOFError, OSError):
        # Parent died or killed the pipe: exit quietly (the shard fault
        # path terminates workers without a StopTask).
        pass
    finally:
        if session is not None:
            session.close()
        conn.close()


def _shard_counters(session) -> dict[str, float]:
    """Shard-local gauges shipped to the parent's metrics registry."""
    ctx = session.ctx
    return {
        "range_failures": float(ctx.monitor.failures),
        "state_bytes": float(ctx.stores.total_bytes()),
        "checkpoints_kept": float(len(session.engine._checkpoints)),
        "seen_rows": float(ctx.seen_rows),
    }
