"""Sharded process-based execution with shared-nothing shard state.

The scale-out layer: hash-partition the streamed fact table across N
worker processes, run the full delta algorithm per shard, and merge the
per-batch partial results deterministically at the sink. See
:mod:`.planner` for when a plan can shard (group-key sharding and the
bit-identity argument), :mod:`.engine` for the scheduler and merge sink,
:mod:`.worker` for the in-process engine each shard runs, and
:mod:`.envelope` for the pickle-able worker protocol.
"""

from repro.engine.shards.engine import ShardedQueryEngine
from repro.engine.shards.envelope import (
    BatchTask,
    InitTask,
    ShardFailure,
    ShardResult,
    ShardSpec,
    StopTask,
    shard_ids,
)
from repro.engine.shards.planner import ShardPlan, analyze_shardability

__all__ = [
    "BatchTask",
    "InitTask",
    "ShardFailure",
    "ShardPlan",
    "ShardResult",
    "ShardSpec",
    "ShardedQueryEngine",
    "StopTask",
    "analyze_shardability",
    "shard_ids",
]
