"""Shard worker protocol: pickle-able task/result envelopes + row hashing.

Everything that crosses the process boundary is defined here, as plain
dataclasses over already-picklable engine types (:class:`Relation`,
:class:`PartialResult` rows, :class:`BatchMetrics`). The parent hands
each worker one :class:`InitTask` at spawn time (as a process argument,
so a forked worker inherits the catalog copy-on-write instead of
unpickling it), then sends one :class:`BatchTask` per mini-batch; the
worker answers each batch with a :class:`ShardResult`
(or a :class:`ShardFailure` carrying the formatted traceback — raw
exceptions never cross the pipe, so an unpicklable error cannot wedge
the scheduler).

Shard ownership is a pure function of the row's shard-key values —
:func:`shard_ids` — so every worker computes identical assignments from
its own copy of the stream with no coordination, and a respawned worker
re-derives exactly the rows its predecessor owned.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field

import numpy as np

from repro.core.blocks import OnlineConfig
from repro.metrics.stats import BatchMetrics
from repro.relational.algebra import PlanNode
from repro.relational.relation import Relation

_FNV_PRIME = np.uint64(1099511628211)
_FNV_OFFSET = np.uint64(14695981039346656037)


@dataclass(frozen=True)
class ShardSpec:
    """One worker's identity: which slice of the key space it owns."""

    index: int
    count: int
    key: tuple[str, ...]


@dataclass
class InitTask:
    """Everything a worker needs to build its shard-local engine."""

    tables: dict[str, Relation]
    streamed_table: str
    plan: PlanNode
    config: OnlineConfig
    num_batches: int
    partition_mode: str
    executor: str
    shard: ShardSpec
    #: Whether the parent's observability session is live: workers skip
    #: computing per-batch counters (state walks) when nobody reads them.
    collect_counters: bool = True


@dataclass(frozen=True)
class BatchTask:
    """Advance the worker's run by one mini-batch."""

    batch_no: int
    #: True while re-driving already-processed batches after a respawn:
    #: the worker processes them identically (deterministic replay); the
    #: parent discards the result envelopes.
    replay: bool = False


@dataclass(frozen=True)
class StopTask:
    """Close the worker's run session and exit the worker loop."""


@dataclass
class ShardResult:
    """One shard's contribution to one batch's merged PartialResult."""

    shard_index: int
    batch_no: int
    #: The shard's result rows (UncertainValue cells ride along intact,
    #: so holistic/quantile sinks merge at full trial fidelity).
    rows: list[dict[str, object]]
    metrics: BatchMetrics
    #: Shard-local observability counters, merged into the parent's
    #: metrics registry under ``shard.<i>.*``.
    counters: dict[str, float] = field(default_factory=dict)
    #: Cumulative CPU seconds of the worker process (``process_time``) —
    #: the scaling benchmark's critical-path input.
    cpu_seconds: float = 0.0


@dataclass
class ShardFailure:
    """A worker-fatal error, shipped as formatted text (always picklable)."""

    shard_index: int
    batch_no: int
    kind: str
    message: str
    traceback: str


def shard_ids(rel: Relation, key: tuple[str, ...], count: int) -> np.ndarray:
    """Deterministic shard assignment per row from its key-column values.

    FNV-1a over per-column splitmix64-mixed value hashes: stable across
    processes and runs (no Python hash randomization), vectorized for
    numeric columns. All rows of one group land on one shard because the
    hash reads only the shard-key columns.
    """
    with np.errstate(over="ignore"):
        h = np.full(len(rel), _FNV_OFFSET, dtype=np.uint64)
        for name in key:
            h = (h ^ _column_hash(rel.columns[name])) * _FNV_PRIME
        return (h % np.uint64(count)).astype(np.int64)


def _column_hash(arr: np.ndarray) -> np.ndarray:
    kind = arr.dtype.kind
    if kind in "iub":
        v = arr.astype(np.uint64)
    elif kind == "f":
        v = arr.astype(np.float64).view(np.uint64)
    else:
        # Strings / objects: CRC32 of the stable text form, row by row
        # (shard keys are group-key columns — low cardinality in practice).
        v = np.fromiter(
            (zlib.crc32(str(x).encode("utf-8")) for x in arr.tolist()),
            dtype=np.uint64,
            count=len(arr),
        )
    return _mix64(v)


def _mix64(v: np.ndarray) -> np.ndarray:
    """splitmix64 finalizer: spreads low-entropy key values across shards."""
    with np.errstate(over="ignore"):
        v = (v ^ (v >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)
        v = (v ^ (v >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)
        return v ^ (v >> np.uint64(31))
