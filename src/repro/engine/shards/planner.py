"""Shardability analysis: can a plan run group-disjoint across shards?

The shard layer's bit-identity contract (vs the serial reference) rests
on **group-key sharding**: pick a *shard key* — a set of streamed-table
columns — such that every group any aggregate in the plan maintains is
wholly owned by one shard. Then each worker sees exactly the rows (in
the original stream order, with the original bootstrap trial rows) that
contribute to its groups; every per-group accumulation performs the same
float operations in the same order as the serial engine, and the sink
merge is a plain disjoint union — no cross-shard arithmetic, hence no
float-reassociation drift.

The analysis walks the logical plan tracking column *provenance*: which
output columns are an unmodified copy of a streamed fact column. Each
aggregate over stream-derived input constrains the shard key to the
fact-column subset of its group-by; each join between stream-derived
inputs constrains it to the join-key columns both sides derive from the
same fact column (so a stream row and the side group it looks up always
hash to the same shard). The shard key is the intersection of all
constraints. Plans with no such key — scalar aggregates, group keys
minted by joins/projections, row-stream results — are reported
non-shardable and the sharded engine falls back to single-process
execution (where bit-identity holds trivially).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.relational.algebra import (
    Aggregate,
    Distinct,
    Join,
    PlanNode,
    Project,
    Rename,
    Scan,
    Select,
    Union,
)
from repro.relational.expressions import Col

#: Provenance: output column name -> streamed fact column it copies
#: unmodified, or None (computed / static / aggregate output).
_Mapping = dict[str, "str | None"]


@dataclass(frozen=True)
class ShardPlan:
    """The analysis verdict for one plan."""

    shardable: bool
    #: Streamed-table columns rows are hash-partitioned on (sorted).
    shard_key: tuple[str, ...] = ()
    #: Why the plan cannot shard (None when shardable).
    reason: str | None = None
    #: Result columns carrying shard-key provenance — the merge sink's
    #: disjointness check keys on these (empty = check skipped).
    result_key_cols: tuple[str, ...] = ()


class _NotShardable(Exception):
    def __init__(self, reason: str):
        super().__init__(reason)
        self.reason = reason


def analyze_shardability(plan: PlanNode, streamed_table: str) -> ShardPlan:
    """Decide whether ``plan`` admits group-key sharding over the stream."""
    constraints: list[frozenset[str]] = []
    try:
        kind, mapping = _walk(plan, streamed_table, constraints)
    except _NotShardable as exc:
        return ShardPlan(False, reason=exc.reason)
    if kind == "static":
        return ShardPlan(
            False, reason="result does not depend on the streamed table"
        )
    if kind == "stream":
        return ShardPlan(
            False,
            reason="row-stream result (no aggregate boundary to merge at)",
        )
    if not constraints:
        return ShardPlan(False, reason="no aggregate over the streamed table")
    key = frozenset.intersection(*constraints)
    if not key:
        return ShardPlan(
            False,
            reason="aggregates/joins share no common fact-column group key",
        )
    result_key_cols = tuple(
        sorted(name for name, fact in mapping.items() if fact in key)
    )
    return ShardPlan(
        True, shard_key=tuple(sorted(key)), result_key_cols=result_key_cols
    )


def _walk(
    node: PlanNode, streamed: str, constraints: list[frozenset[str]]
) -> tuple[str, _Mapping]:
    """Returns (kind, provenance) for ``node``'s output.

    ``kind`` mirrors the online compiler's dataflow classes: ``static``
    (no streamed input), ``stream`` (row stream of fact-derived tuples),
    ``small`` (aggregate-bounded block output).
    """
    if isinstance(node, Scan):
        if node.table == streamed:
            return "stream", {name: name for name in node.schema.names}
        return "static", {}

    if isinstance(node, Select):
        return _walk(node.child, streamed, constraints)

    if isinstance(node, Project):
        kind, mapping = _walk(node.child, streamed, constraints)
        out: _Mapping = {}
        for name, expr in node.outputs:
            out[name] = mapping.get(expr.name) if isinstance(expr, Col) else None
        return kind, out

    if isinstance(node, Rename):
        kind, mapping = _walk(node.child, streamed, constraints)
        return kind, {
            node.mapping.get(name, name): fact for name, fact in mapping.items()
        }

    if isinstance(node, Distinct):
        # Lowered to a COUNT aggregate over its columns by the rewriter,
        # so it carries the same group-key constraint as an Aggregate.
        kind, mapping = _walk(node.child, streamed, constraints)
        if kind == "static":
            return "static", {}
        out = {name: mapping.get(name) for name in node.columns}
        facts = frozenset(f for f in out.values() if f is not None)
        if not facts:
            raise _NotShardable(
                f"distinct over no streamed fact column: {node.columns}"
            )
        constraints.append(facts)
        return "small", out

    if isinstance(node, Aggregate):
        kind, mapping = _walk(node.child, streamed, constraints)
        if kind == "static":
            return "static", {}
        out = {name: mapping.get(name) for name in node.group_by}
        facts = frozenset(f for f in out.values() if f is not None)
        if not facts:
            raise _NotShardable(
                "scalar aggregate over the stream"
                if not node.group_by
                else f"aggregate groups by no streamed fact column: "
                f"{node.group_by}"
            )
        constraints.append(facts)
        for spec in node.aggs:
            out[spec.name] = None
        return "small", out

    if isinstance(node, Union):
        lkind, lmap = _walk(node.left, streamed, constraints)
        rkind, rmap = _walk(node.right, streamed, constraints)
        if lkind == "static" and rkind == "static":
            return "static", {}
        if "static" in (lkind, rkind):
            # Static rows bypass stream partitioning entirely; no shard
            # owns them exclusively.
            raise _NotShardable("union of streamed and static inputs")
        if lkind != rkind:
            raise _NotShardable("union of stream and aggregate subplans")
        out = {
            name: (fact if fact is not None and rmap.get(name) == fact else None)
            for name, fact in lmap.items()
        }
        return lkind, out

    if isinstance(node, Join):
        lkind, lmap = _walk(node.left, streamed, constraints)
        rkind, rmap = _walk(node.right, streamed, constraints)
        if lkind == "static" and rkind == "static":
            return "static", {}
        if {lkind, rkind} == {"stream"}:
            raise _NotShardable("join of two raw streams")
        # Output schema: left columns + right columns minus right keys.
        dropped = set(node.right_keys)
        out = dict(lmap)
        for name, fact in rmap.items():
            if name not in dropped:
                out[name] = fact if rkind != "static" else None
        if "static" in (lkind, rkind):
            # Broadcast join against a replicated static side: row-local
            # on the streamed side, no ownership constraint.
            return (lkind if rkind == "static" else rkind), out
        # stream x small or small x small: the side groups a stream row
        # (or a group row) looks up must live on the row's own shard, so
        # the shard key must sit inside the join keys both sides derive
        # from the same fact column.
        matched = frozenset(
            lf
            for lk, rk in node.keys
            if (lf := lmap.get(lk)) is not None and rmap.get(rk) == lf
        )
        if not matched:
            raise _NotShardable(
                "join between stream/aggregate subplans has no shared "
                "fact-column key"
                + (" (cross join)" if not node.keys else "")
            )
        constraints.append(matched)
        return ("stream" if "stream" in (lkind, rkind) else "small"), out

    raise _NotShardable(f"unsupported plan node {type(node).__name__}")
