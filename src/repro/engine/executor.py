"""Batch executors: schedule a compiled query's units within one batch.

The compiler emits execution units in block-topological order, each
declaring the lineage-block ids it ``produces`` and ``consumes``. The
serial executor simply runs them in that order; the parallel executor
turns the declarations into a dependency DAG and runs independent units
concurrently in deterministic *waves* (a unit joins a wave once every
block it consumes has been published by a completed wave).

Determinism: worker threads record their counters into per-unit scratch
:class:`~repro.metrics.stats.BatchMetrics` (installed thread-locally via
``ctx.push_metrics``) which are merged in unit-index order after the
wave, so parallel totals equal serial totals bit for bit. Cross-unit
dataflow goes exclusively through ``ctx.blocks`` entries keyed by the
declared block ids, and distinct units never write the same id, so no
locking is needed beyond the merge barrier.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from typing import Sequence

from repro.core.blocks import RuntimeContext
from repro.core.compiler import ExecutionUnit
from repro.metrics.stats import BatchMetrics
from repro.obs.tracer import TraceBuffer


class BatchExecutor:
    """Runs all units of a compiled query for one batch."""

    name = "base"

    def execute(self, units: Sequence[ExecutionUnit], ctx: RuntimeContext) -> None:
        raise NotImplementedError

    def close(self) -> None:
        """Release scheduler resources (thread pools)."""


class SerialExecutor(BatchExecutor):
    """Runs units one by one in compiler (block-topological) order."""

    name = "serial"

    def execute(self, units: Sequence[ExecutionUnit], ctx: RuntimeContext) -> None:
        if ctx.verifier is not None:
            ctx.verifier.begin_batch(ctx.batch_no)
        if ctx.sanitizer is not None:
            ctx.sanitizer.begin_batch(ctx.batch_no, ctx.delta)
        for unit in units:
            started = time.perf_counter()
            _run_with_retry(unit, ctx)
            elapsed = time.perf_counter() - started
            ctx.metrics.add_op_seconds(unit.label, elapsed)
            ctx.metrics.unit_seconds += elapsed


def dependency_waves(units: Sequence[ExecutionUnit]) -> list[list[int]]:
    """Partition unit indices into waves of mutually independent units.

    A unit is ready once every block id it consumes has been produced by
    an earlier wave. Ids no unit in the list produces are treated as
    already available (they come from outside this schedule). Falls back
    to one-unit-per-wave serial order if the declarations ever fail to
    make progress, so a bad declaration degrades to correct-but-serial.
    """
    producible = set()
    for unit in units:
        producible |= unit.produces
    available: set[int] = set()
    remaining = list(range(len(units)))
    waves: list[list[int]] = []
    while remaining:
        wave = [
            i
            for i in remaining
            if all(
                dep in available or dep not in producible
                for dep in units[i].consumes
            )
        ]
        if not wave:
            waves.extend([i] for i in remaining)
            break
        waves.append(wave)
        in_wave = set(wave)
        for i in wave:
            available |= units[i].produces
        remaining = [i for i in remaining if i not in in_wave]
    return waves


class ParallelExecutor(BatchExecutor):
    """Runs independent units concurrently on a thread pool.

    Produces per-batch results identical to :class:`SerialExecutor`: the
    schedule respects the declared dependency DAG, and metrics are merged
    deterministically (see module docstring).
    """

    name = "parallel"

    def __init__(self, max_workers: int | None = None):
        self.max_workers = max_workers
        self._pool: ThreadPoolExecutor | None = None

    def _ensure_pool(self) -> ThreadPoolExecutor:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.max_workers, thread_name_prefix="repro-exec"
            )
        return self._pool

    def execute(self, units: Sequence[ExecutionUnit], ctx: RuntimeContext) -> None:
        if ctx.verifier is not None:
            ctx.verifier.begin_batch(ctx.batch_no)
        if ctx.sanitizer is not None:
            ctx.sanitizer.begin_batch(ctx.batch_no, ctx.delta)
        pool = self._ensure_pool()
        tracer = ctx.obs.tracer
        scratches: list[tuple[int, BatchMetrics]] = []
        #: Per-unit trace scratch, merged in unit-index order below — the
        #: same determinism discipline as the metrics scratches.
        buffers: list[tuple[int, TraceBuffer]] = []
        failures: list[tuple[int, BaseException]] = []
        for wave_no, wave in enumerate(dependency_waves(units)):
            wave_span = tracer.span(
                "wave", cat="exec", batch=ctx.batch_no,
                wave=wave_no, units=len(wave),
            ) if tracer.enabled else None
            if wave_span:
                wave_span.__enter__()
            try:
                if len(wave) == 1:
                    i = wave[0]
                    scratch = BatchMetrics(ctx.batch_no)
                    scratches.append((i, scratch))
                    buffer = _unit_buffer(tracer, units[i], buffers, i)
                    err = _run_unit(units[i], ctx, scratch, buffer)
                    if err is not None:
                        failures.append((i, err))
                else:
                    futures = []
                    for i in wave:
                        scratch = BatchMetrics(ctx.batch_no)
                        scratches.append((i, scratch))
                        buffer = _unit_buffer(tracer, units[i], buffers, i)
                        futures.append(
                            (i, pool.submit(_run_unit, units[i], ctx, scratch, buffer))
                        )
                    for i, future in futures:
                        err = future.result()
                        if err is not None:
                            failures.append((i, err))
            finally:
                if wave_span:
                    wave_span.__exit__(None, None, None)
            if failures:
                break
            if ctx.sanitizer is not None:
                # Wave barrier: cross-check the per-batch buffer access
                # log between the threads that just ran (SAN003).
                ctx.sanitizer.check_batch()
        for _, scratch in sorted(scratches, key=lambda pair: pair[0]):
            ctx.metrics.merge_from(scratch)
        if buffers:
            tracer.merge(
                buf for _, buf in sorted(buffers, key=lambda pair: pair[0])
            )
        if failures:
            # Deterministic failure choice: the lowest unit index, i.e.
            # the one the serial executor would have hit first. The other
            # same-wave failures are attached (notes + __context__ chain)
            # and surfaced as tracer warnings so none is silently lost.
            failures.sort(key=lambda pair: pair[0])
            primary_index, primary = failures[0]
            for index, err in failures[1:]:
                tracer.warning(
                    "wave-multi-failure", batch=ctx.batch_no,
                    unit=units[index].label,
                    primary_unit=units[primary_index].label,
                    message=str(err),
                )
                if hasattr(primary, "add_note"):  # Python >= 3.11
                    primary.add_note(
                        f"[executor] unit {units[index].label!r} also "
                        f"failed in the same wave: {err!r}"
                    )
            _chain_failures(primary, [err for _, err in failures[1:]])
            raise primary

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


def _chain_failures(primary: BaseException, others: list[BaseException]) -> None:
    """Thread suppressed same-wave failures onto ``primary.__context__``.

    A full traceback of the raised failure then renders every failure of
    the wave. Walks to the end of each chain and guards against linking
    an exception twice (distinct units can, in principle, surface the
    same exception object).
    """
    seen = {id(primary)}
    tail = primary
    while tail.__context__ is not None and id(tail.__context__) not in seen:
        tail = tail.__context__
        seen.add(id(tail))
    for err in others:
        if id(err) in seen:
            continue
        tail.__context__ = err
        seen.add(id(err))
        tail = err
        while tail.__context__ is not None and id(tail.__context__) not in seen:
            tail = tail.__context__
            seen.add(id(tail))


def _unit_buffer(
    tracer, unit: ExecutionUnit, buffers: list[tuple[int, TraceBuffer]], index: int
) -> TraceBuffer | None:
    """Allocate (and register) a per-unit trace scratch, if tracing."""
    if not tracer.enabled:
        return None
    buffer = TraceBuffer(track=f"unit:{unit.label}")
    buffers.append((index, buffer))
    return buffer


def _run_unit(
    unit: ExecutionUnit,
    ctx: RuntimeContext,
    scratch: BatchMetrics,
    buffer: TraceBuffer | None = None,
) -> BaseException | None:
    """Run one unit with thread-local scratch metrics (and, when tracing,
    a thread-local scratch trace buffer); report, don't raise (the
    scheduler decides deterministically which failure wins)."""
    tracer = ctx.obs.tracer
    ctx.push_metrics(scratch)
    if buffer is not None:
        tracer.push_buffer(buffer)
    started = time.perf_counter()
    try:
        _run_with_retry(unit, ctx)
        return None
    except BaseException as err:  # noqa: BLE001 — forwarded to the scheduler
        return err
    finally:
        elapsed = time.perf_counter() - started
        scratch.add_op_seconds(unit.label, elapsed)
        scratch.unit_seconds += elapsed
        if buffer is not None:
            tracer.pop_buffer()
        ctx.pop_metrics()


def _run_with_retry(unit: ExecutionUnit, ctx: RuntimeContext) -> None:
    """Run one unit body, absorbing transient failures.

    Only errors marked ``transient`` (:class:`~repro.errors.
    TransientUnitError`) are retried, up to
    ``OnlineConfig.unit_retry_attempts`` extra attempts with exponential
    backoff; everything else propagates immediately. The ``unit`` fault
    probe fires *before* the unit body, so a retried injected fault
    re-runs the unit from an untouched slate — no store mutation is ever
    applied twice. (A real transient error raised mid-body would need an
    idempotent body; none of the built-in units raise those.)
    """
    retries = ctx.config.unit_retry_attempts
    tracer = ctx.obs.tracer
    attempt = 0
    while True:
        attempt += 1
        try:
            # One "unit" span per *attempt*, tagged with its ordinal: a
            # retried unit renders as separate slices instead of
            # overlapping spans with identical args (backoff sleeps fall
            # in the gap between slices, where they belong).
            if tracer.enabled:
                with tracer.span(
                    "unit", cat="exec", batch=ctx.batch_no,
                    unit=unit.label, attempt=attempt,
                ):
                    ctx.fault("unit", unit.label)
                    unit.run(ctx)
            else:
                ctx.fault("unit", unit.label)
                unit.run(ctx)
            return
        except BaseException as err:  # noqa: BLE001 — filtered on `transient`
            if not getattr(err, "transient", False) or attempt > retries:
                raise
            ctx.obs.tracer.warning(
                "unit-retry", batch=ctx.batch_no, unit=unit.label,
                attempt=attempt, message=str(err),
            )
            backoff = ctx.config.unit_retry_backoff * (2 ** (attempt - 1))
            if backoff > 0:
                time.sleep(backoff)


def make_executor(spec: str | BatchExecutor, max_workers: int | None = None) -> BatchExecutor:
    """Resolve an executor name (``"serial"``/``"parallel"``) or instance."""
    if isinstance(spec, BatchExecutor):
        return spec
    if spec == "serial":
        return SerialExecutor()
    if spec == "parallel":
        return ParallelExecutor(max_workers=max_workers)
    raise ValueError(f"unknown executor {spec!r} (expected 'serial' or 'parallel')")
