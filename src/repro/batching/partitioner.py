"""Mini-batch partitioning of streamed relations (Section 2).

iOLAP randomly partitions the streamed input into ``p`` batches
``ΔD_1 … ΔD_p`` and processes one per iteration. Two partitioning modes
are provided, mirroring the paper:

* ``"blocks"`` — block-wise randomness: contiguous storage blocks are
  randomly assigned to batches. Cheap, and statistically fine when values
  are uncorrelated with storage order.
* ``"shuffle"`` — the pre-processing tool for when that assumption fails:
  a full random permutation of rows before slicing.
* ``"sequential"`` — contiguous ranges in storage order, for inputs that
  were already shuffled at rest (e.g. by :func:`shuffle_relation` before
  disk ingestion): every batch is then a zero-copy
  :meth:`~repro.relational.relation.Relation.slice`.

Whatever the mode, :meth:`Partitioner.partition` materializes a batch
with ``Relation.slice`` (views, no copies) whenever its sorted row
indices turn out contiguous, and falls back to ``take`` gathers
otherwise.

The partitioner also exposes the accumulated-sampling bookkeeping: after
batch ``i`` the engine has seen ``|D_i|`` rows of ``|D|``, so partial
aggregates extrapolate with ``m_i = |D| / |D_i|``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ReproError
from repro.relational.relation import Relation


@dataclass(frozen=True)
class BatchInfo:
    """Bookkeeping for one mini-batch of a streamed relation."""

    batch_no: int  # 1-based, as in the paper
    delta_rows: int
    seen_rows: int
    total_rows: int

    @property
    def scale(self) -> float:
        """The extrapolation factor ``m_i = |D| / |D_i|``."""
        if self.seen_rows == 0:
            return 1.0
        return self.total_rows / self.seen_rows

    @property
    def fraction_seen(self) -> float:
        return self.seen_rows / self.total_rows if self.total_rows else 1.0


class Partitioner:
    """Splits one relation into mini-batches with a deterministic seed."""

    def __init__(
        self,
        mode: str = "shuffle",
        seed: int = 0,
        block_rows: int = 64,
    ):
        if mode not in ("shuffle", "blocks", "sequential"):
            raise ReproError(f"unknown partition mode {mode!r}")
        self.mode = mode
        self.seed = seed
        self.block_rows = block_rows

    def partition_indices(
        self, num_rows: int, num_batches: int
    ) -> list[np.ndarray]:
        """Row-index arrays for each batch (deterministic given the seed)."""
        if num_batches < 1:
            raise ReproError("need at least one batch")
        num_batches = min(num_batches, max(num_rows, 1))
        rng = np.random.default_rng(self.seed)
        if self.mode == "sequential":
            order = np.arange(num_rows, dtype=np.intp)
        elif self.mode == "shuffle":
            order = rng.permutation(num_rows)
        else:
            blocks = [
                np.arange(start, min(start + self.block_rows, num_rows))
                for start in range(0, num_rows, self.block_rows)
            ]
            rng.shuffle(blocks)
            order = (
                np.concatenate(blocks) if blocks else np.empty(0, dtype=np.intp)
            )
        return [np.sort(part) for part in np.array_split(order, num_batches)]

    def partition(
        self, relation: Relation, num_batches: int
    ) -> list[Relation]:
        """Materialized mini-batch relations (zero-copy when contiguous)."""
        return [
            _materialize_batch(relation, ix)
            for ix in self.partition_indices(len(relation), num_batches)
        ]


def _materialize_batch(relation: Relation, ix: np.ndarray) -> Relation:
    """One batch from its sorted row indices.

    ``partition_indices`` returns sorted unique indices, so contiguity is
    a single range check; contiguous batches become zero-copy slices of
    the streamed table (its buffers may themselves be disk maps).
    """
    if len(ix) and int(ix[-1]) - int(ix[0]) == len(ix) - 1:
        return relation.slice(int(ix[0]), int(ix[-1]) + 1)
    return relation.take(ix)


def num_batches_for(total_rows: int, batch_rows: int) -> int:
    """Batch count for a target per-batch row count (at least one)."""
    if batch_rows <= 0:
        raise ReproError("batch_rows must be positive")
    return max(1, -(-total_rows // batch_rows))


def shuffle_relation(relation: Relation, seed: int = 0) -> Relation:
    """The pre-processing shuffle tool: a seeded random permutation."""
    rng = np.random.default_rng(seed)
    return relation.take(rng.permutation(len(relation)))
