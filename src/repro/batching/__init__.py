"""Mini-batch partitioning of streamed relations."""

from repro.batching.partitioner import (
    BatchInfo,
    Partitioner,
    num_batches_for,
    shuffle_relation,
)
from repro.batching.stratified import StratifiedPartitioner, stratum_coverage

__all__ = [
    "BatchInfo",
    "Partitioner",
    "StratifiedPartitioner",
    "num_batches_for",
    "shuffle_relation",
    "stratum_coverage",
]
