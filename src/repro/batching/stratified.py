"""Stratified mini-batch partitioning (the paper's Section 9 extension).

The paper notes iOLAP "can be extended to incorporate stratified
sampling": when a group-by column is heavily skewed, uniform batches may
starve rare groups of tuples for many batches, making their estimates
useless early on. A stratified partitioner splits *within each stratum*
(typically the group-by column of interest), so every batch contains a
proportional sample of every stratum and rare groups converge at the
same relative rate as common ones.

Semantics are unchanged: the union of the batches is the whole relation
and each batch is a random sample *within strata*; the scale factor
``m_i`` remains |D|/|D_i| because strata are sampled proportionally.
"""

from __future__ import annotations

import numpy as np

from repro.batching.partitioner import Partitioner
from repro.errors import ReproError
from repro.relational.relation import Relation


class StratifiedPartitioner(Partitioner):
    """Splits each stratum of ``stratify_by`` evenly across batches."""

    def __init__(self, stratify_by: str, seed: int = 0):
        super().__init__(mode="shuffle", seed=seed)
        self.stratify_by = stratify_by

    def partition_relation_indices(
        self, relation: Relation, num_batches: int
    ) -> list[np.ndarray]:
        if self.stratify_by not in relation.schema:
            raise ReproError(
                f"stratification column {self.stratify_by!r} not in "
                f"{relation.schema.names}"
            )
        if num_batches < 1:
            raise ReproError("need at least one batch")
        rng = np.random.default_rng(self.seed)
        values = relation.column(self.stratify_by)
        batches: list[list[np.ndarray]] = [[] for _ in range(num_batches)]
        for value in np.unique(values):
            members = np.flatnonzero(values == value)
            rng.shuffle(members)
            # Rotate the starting batch per stratum so remainders spread
            # evenly instead of piling into batch 1.
            offset = int(rng.integers(num_batches))
            for j, part in enumerate(np.array_split(members, num_batches)):
                batches[(j + offset) % num_batches].append(part)
        return [
            np.sort(np.concatenate(parts)) if parts else np.empty(0, dtype=np.intp)
            for parts in batches
        ]

    def partition(self, relation: Relation, num_batches: int) -> list[Relation]:
        return [
            relation.take(ix)
            for ix in self.partition_relation_indices(relation, num_batches)
        ]


def stratum_coverage(
    batches: list[Relation], column: str
) -> list[float]:
    """Fraction of all strata present in each batch (diagnostic)."""
    all_values: set = set()
    per_batch: list[set] = []
    for batch in batches:
        values = set(batch.column(column).tolist())
        per_batch.append(values)
        all_values |= values
    if not all_values:
        return [1.0 for _ in batches]
    return [len(v) / len(all_values) for v in per_batch]
